#pragma once
// Job model for the batch simulation engine.
//
// A job is one independent unit of simulation work: build a Circuit, run
// an analysis, reduce the waveforms to a handful of scalar metrics. Jobs
// carry a *key* — a stable, human-readable string that fully describes
// the job's inputs — which doubles as the cache identity and the manifest
// label. Two jobs with equal keys must compute equal results.
//
// Determinism contract: a job must derive all randomness from
// `JobContext::seed` (never from shared RNG state, wall clock, or thread
// id), so a batch produces bit-identical results regardless of worker
// count or scheduling order.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lint/diagnostics.h"
#include "spice/analysis.h"
#include "util/wave.h"

namespace ahfic::runner {

/// The small result struct a job reduces to: ordered name -> value
/// metrics. Doubles only, so results round-trip exactly through the
/// on-disk cache (hex float encoding) and stay comparable bit-for-bit.
struct JobResult {
  std::vector<std::pair<std::string, double>> metrics;
  /// Optional bulk payload (sweep columns, per-die tables): stored as a
  /// binary "ahfic-wave-v1" sidecar next to the on-disk cache file, not
  /// as inline JSON. Shared so cache copies stay cheap; treat the table
  /// as immutable once published.
  std::shared_ptr<const util::WaveTable> wave;

  /// Appends or overwrites a metric.
  void set(const std::string& name, double value);
  /// Looks a metric up; returns `fallback` when absent.
  double get(const std::string& name, double fallback = 0.0) const;
  bool has(const std::string& name) const;

  bool operator==(const JobResult& other) const {
    if (metrics != other.metrics) return false;
    if ((wave == nullptr) != (other.wave == nullptr)) return false;
    return wave == nullptr || wave->bitIdentical(*other.wave);
  }
};

/// Hands the engine's per-attempt environment to the job body.
struct JobContext {
  /// Analysis tolerances for this attempt — rung `rung` of the retry
  /// ladder. Jobs constructing Analyzers should pass these through so
  /// escalation actually changes the solve.
  spice::AnalysisOptions options;
  /// Deterministic per-job seed (base seed + job index, mixed). All job
  /// randomness must come from here.
  std::uint64_t seed = 0;
  /// 0 = first attempt at default options.
  int rung = 0;
  /// Jobs may report solver work here (e.g. from Analyzer::stats());
  /// the engine copies it into the manifest record.
  spice::AnalyzerStats stats;

  /// Accumulates an analyzer's counters into `stats`.
  void noteStats(const spice::AnalyzerStats& s);
};

/// One schedulable unit.
struct Job {
  /// Stable identity: cache key and manifest label. Must encode every
  /// input the result depends on (shape name, bias point, corner, ...).
  std::string key;
  /// True when the job consumes `JobContext::seed` (Monte-Carlo draws).
  /// The engine then folds the batch base seed into the cache identity so
  /// runs with different seeds do not alias.
  bool usesSeed = false;
  /// Correlation id of the request that spawned this job (empty when
  /// the job was not born from the daemon). The engine installs it as
  /// the worker thread's trace context and copies it into
  /// AnalysisOptions::traceId, so log lines, spans and diag reports all
  /// carry it. Not part of the cache identity: the same work is the
  /// same result, whoever asked.
  std::string traceId;
  /// The work itself. May throw ConvergenceError to request escalation.
  std::function<JobResult(JobContext&)> run;
  /// Optional static pre-flight. When set, the engine runs it before the
  /// cache lookup and the first solver attempt; a report with errors
  /// rejects the job (JobStatus::kRejected) without consuming any retry
  /// rung or Newton iteration. Warnings and infos never gate.
  std::function<lint::LintReport()> preflight;
};

/// SplitMix64-mixed per-job seed: decorrelated streams for adjacent
/// indices, identical for identical (base, index) pairs.
std::uint64_t deriveJobSeed(std::uint64_t baseSeed, std::uint64_t index);

/// FNV-1a 64-bit hash of a key string: the stable cache-file identity.
std::uint64_t stableKeyHash(const std::string& key);

}  // namespace ahfic::runner
