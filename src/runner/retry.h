#pragma once
// Retry-escalation ladder: the sequence of AnalysisOptions a job is
// attempted with. Rung 0 is the caller's preferred (tight) setup; each
// later rung trades accuracy for robustness, mirroring what a designer
// does by hand when a corner die refuses to converge:
//
//   rung 0  caller options (SPICE-default tolerances)
//   rung 1  10x looser reltol/vntol/abstol, more Newton iterations
//   rung 2  rung 1 + gmin raised to 1e-9 S (stronger junction shunts)
//   rung 3  rung 2 + backward Euler (maximum damping) + more step retries
//
// A job that throws ConvergenceError is retried on the next rung; success
// on rung > 0 is reported as "recovered" in the manifest, exhaustion as
// "failed". Any other exception fails the job immediately (a parse error
// will not converge better at looser tolerances).

#include <string>
#include <vector>

#include "spice/analysis.h"

namespace ahfic::runner {

/// One rung: a label (for manifests) plus the options to attempt with.
struct RetryRung {
  std::string name;
  spice::AnalysisOptions options;
};

/// The escalation sequence. Always has at least one rung.
class RetryLadder {
 public:
  /// Single-rung ladder: no retries, just `base`.
  static RetryLadder none(spice::AnalysisOptions base = {});

  /// The standard four-rung ladder described above, built on `base`.
  static RetryLadder standard(spice::AnalysisOptions base = {});

  explicit RetryLadder(std::vector<RetryRung> rungs);

  int rungCount() const { return static_cast<int>(rungs_.size()); }
  const RetryRung& rung(int k) const;

 private:
  std::vector<RetryRung> rungs_;
};

}  // namespace ahfic::runner
