#include "runner/retry.h"

#include <algorithm>

#include "util/error.h"

namespace ahfic::runner {

RetryLadder::RetryLadder(std::vector<RetryRung> rungs)
    : rungs_(std::move(rungs)) {
  if (rungs_.empty()) throw Error("RetryLadder: needs at least one rung");
}

const RetryRung& RetryLadder::rung(int k) const {
  if (k < 0 || k >= rungCount())
    throw Error("RetryLadder: rung index out of range");
  return rungs_[static_cast<size_t>(k)];
}

RetryLadder RetryLadder::none(spice::AnalysisOptions base) {
  return RetryLadder({{"default", base}});
}

RetryLadder RetryLadder::standard(spice::AnalysisOptions base) {
  std::vector<RetryRung> rungs;
  rungs.push_back({"default", base});

  spice::AnalysisOptions loose = base;
  loose.reltol = base.reltol * 10.0;
  loose.vntol = base.vntol * 10.0;
  loose.abstol = base.abstol * 10.0;
  loose.maxNewtonIters = std::max(base.maxNewtonIters, 200);
  rungs.push_back({"loose-tol", loose});

  spice::AnalysisOptions shunted = loose;
  shunted.gmin = std::max(base.gmin, 1e-9);
  rungs.push_back({"high-gmin", shunted});

  spice::AnalysisOptions damped = shunted;
  damped.method = spice::IntegMethod::kBackwardEuler;
  damped.maxStepRetries = std::max(base.maxStepRetries, 20);
  rungs.push_back({"backward-euler", damped});

  return RetryLadder(std::move(rungs));
}

}  // namespace ahfic::runner
