#pragma once
// BatchRunner: thread-pool execution of independent simulation jobs with
// retry escalation, result caching, and a run manifest.
//
// Usage:
//   RunnerOptions opts;
//   opts.threads = 4;
//   BatchRunner runner(opts);
//   BatchResult batch = runner.run(jobs);
//   batch.manifest.writeJsonFile("manifest.json");
//   for (const JobOutcome& out : batch.outcomes) ...
//
// Guarantees:
//  * Determinism — outcomes (results, statuses, rungs) are identical for
//    any worker count, because jobs are independent, seeded per index
//    from the base seed, and collected in submission order. Only wall
//    times and worker ids vary.
//  * No batch-killing exceptions — a job failure (ConvergenceError after
//    ladder exhaustion, or any other error) is recorded as
//    JobStatus::kFailed; run() itself only throws for engine-level
//    problems (e.g. an unwritable cache file).
//  * Static pre-flight — a job carrying a `preflight` hook is linted
//    before the cache lookup and the first solver attempt; lint errors
//    reject it (JobStatus::kRejected) with zero attempts consumed.

#include <cstdint>
#include <string>
#include <vector>

#include "runner/cache.h"
#include "runner/job.h"
#include "runner/manifest.h"
#include "runner/retry.h"

namespace ahfic::runner {

struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int threads = 0;
  /// Base seed for deriveJobSeed(baseSeed, index).
  std::uint64_t baseSeed = 1;
  /// Escalation sequence applied on ConvergenceError.
  RetryLadder ladder = RetryLadder::standard();
  /// When false, every job is recomputed and nothing is stored.
  bool useCache = true;
  /// Optional on-disk cache: loaded before the batch (if present) and
  /// rewritten after it. Empty = in-memory only.
  std::string cacheFile;
  /// Convergence diagnostics: every solver attempt runs with forensics
  /// recording (AnalysisOptions::forensics), and each failed attempt's
  /// "ahfic-diag-v1" report is attached to the job's manifest record
  /// (JobRecord::diags) with the rung that produced it — so a retried or
  /// exhausted job tells you *what* broke, not just that it escalated.
  bool diagnostics = true;
  /// Replica-block size for Monte-Carlo workloads that have a batched
  /// data plane (monteCarloFtBatchJobs / the daemon's "mc-ft-batch").
  /// <= 1 selects the scalar one-job-per-die pipeline; larger values
  /// solve up to this many dies per job through spice::ReplicaBatch.
  /// Forensics is unsupported on the batched plane, so batched jobs run
  /// with `diagnostics` ignored.
  int mcBatchSize = 0;
};

/// What the batch hands back for one job.
struct JobOutcome {
  JobResult result;   ///< empty when the job failed
  JobRecord record;

  bool ok() const {
    return record.status == JobStatus::kOk ||
           record.status == JobStatus::kRecovered;
  }
};

struct BatchResult {
  /// One outcome per submitted job, in submission order.
  std::vector<JobOutcome> outcomes;
  RunManifest manifest;
};

class BatchRunner {
 public:
  explicit BatchRunner(RunnerOptions opts = {});

  /// Executes the batch. Thread count actually used is
  /// min(options.threads, jobs.size()).
  BatchResult run(const std::vector<Job>& jobs);

  /// The in-memory cache (shared across run() calls on this runner).
  ResultCache& cache() { return cache_; }
  const RunnerOptions& options() const { return opts_; }

  /// Resolved worker count for a batch of `jobCount` jobs.
  int effectiveThreads(size_t jobCount) const;

 private:
  JobOutcome runOne(const Job& job, size_t index, int worker);

  RunnerOptions opts_;
  ResultCache cache_;
};

}  // namespace ahfic::runner
