#include "runner/job.h"

namespace ahfic::runner {

void JobResult::set(const std::string& name, double value) {
  for (auto& m : metrics) {
    if (m.first == name) {
      m.second = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

double JobResult::get(const std::string& name, double fallback) const {
  for (const auto& m : metrics)
    if (m.first == name) return m.second;
  return fallback;
}

bool JobResult::has(const std::string& name) const {
  for (const auto& m : metrics)
    if (m.first == name) return true;
  return false;
}

void JobContext::noteStats(const spice::AnalyzerStats& s) {
  stats.newtonIterations += s.newtonIterations;
  stats.matrixSolves += s.matrixSolves;
  stats.acceptedSteps += s.acceptedSteps;
  stats.rejectedSteps += s.rejectedSteps;
  stats.gminSteps += s.gminSteps;
  stats.sourceSteps += s.sourceSteps;
}

std::uint64_t deriveJobSeed(std::uint64_t baseSeed, std::uint64_t index) {
  std::uint64_t z = baseSeed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t stableKeyHash(const std::string& key) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace ahfic::runner
