#pragma once
// Run manifest: the observability record of one batch execution.
//
// One JobRecord per job (in submission order) plus batch-level
// aggregates; exportable as JSON ("ahfic-run-manifest-v1") for dashboards
// and regression tracking. Statuses and results are deterministic across
// worker counts; wall times and worker assignments are informational and
// vary run to run.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.h"

namespace ahfic::runner {

/// Final disposition of one job.
enum class JobStatus {
  kOk,         ///< succeeded on rung 0 (or served from cache)
  kRecovered,  ///< succeeded after >= 1 ConvergenceError escalation
  kRejected,   ///< pre-flight lint found errors; the solver never ran
  kFailed,     ///< exhausted the ladder or hit a non-retryable error
};

const char* jobStatusName(JobStatus status);

/// Per-job manifest entry.
struct JobRecord {
  std::string key;
  JobStatus status = JobStatus::kOk;
  int attempts = 0;        ///< rungs actually executed (0 for cache hits)
  int rung = 0;            ///< rung of the successful attempt
  std::string rungName;    ///< ladder label of that rung
  bool cacheHit = false;
  /// Escalations beyond the first attempt (0 on a first-try success or a
  /// cache hit). Emitted explicitly in the JSON so downstream parsers
  /// never need null-handling.
  int retries() const { return attempts > 1 ? attempts - 1 : 0; }
  double wallMs = 0.0;     ///< informational; varies run to run
  long newtonIterations = 0;
  long matrixSolves = 0;
  long acceptedSteps = 0;
  long rejectedSteps = 0;
  int worker = 0;          ///< informational; varies run to run
  std::string error;       ///< failure message when status == kFailed
  /// Per-attempt convergence-forensics attachments (JSON array of
  /// {rung, rungName, report} with "ahfic-diag-v1" report objects),
  /// populated by the engine when RunnerOptions::diagnostics is on and
  /// an attempt threw a ConvergenceError carrying a report. Null (and
  /// omitted from the manifest) otherwise.
  util::JsonValue diags;
};

/// Whole-batch record.
struct RunManifest {
  int threads = 1;
  std::uint64_t baseSeed = 0;
  double wallMs = 0.0;  ///< batch wall time (submission to last join)
  std::vector<JobRecord> jobs;
  /// Batch-window snapshot of the global metrics registry (counter and
  /// histogram deltas over the run), set by the engine when metrics are
  /// enabled (obs::setMetricsEnabled / --metrics). Null otherwise; when
  /// set it is emitted as the manifest's "metrics" section.
  util::JsonValue metrics;

  int countWithStatus(JobStatus status) const;
  int cacheHits() const;
  long totalRetries() const;  ///< attempts beyond the first, summed
  long totalNewtonIterations() const;
  /// Completed jobs per wall-clock second (0 when the batch was empty).
  double throughputJobsPerSec() const;

  util::JsonValue toJson() const;
  std::string toJsonString(int indent = 2) const;
  /// Writes toJsonString to a file; throws on I/O failure.
  void writeJsonFile(const std::string& path) const;
};

}  // namespace ahfic::runner
