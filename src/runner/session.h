#pragma once
// Session: a long-lived simulation engine for server-style callers.
//
// BatchRunner already keeps its in-memory ResultCache across run()
// calls, but every CLI and bench constructs a fresh runner per
// invocation, so in practice each batch starts cold. A Session makes
// the warm-state contract explicit and concurrency-safe for daemons
// (ahficd) that execute many small batches against one engine:
//
//  * one ResultCache for the whole session — a deck or workload solved
//    once is served bit-identically from cache on every later batch;
//  * a text side-store for artefacts that are not JobResult metrics
//    (deck listings, rendered reports), keyed like the result cache so
//    a cache hit can reproduce the full response;
//  * run() is safe to call from several threads at once: jobs are
//    independent, the cache locks internally, and each call executes on
//    the calling thread(s). On-disk cache files are not supported here
//    precisely because concurrent run() calls would race on the file.
//
// Usage:
//   runner::Session session(opts);
//   auto first = session.run(jobs);    // cold: solves and caches
//   auto again = session.run(jobs);    // warm: all cache hits

#include <atomic>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "runner/engine.h"
#include "util/mutex.h"

namespace ahfic::runner {

class Session {
 public:
  /// `opts.cacheFile` must be empty (throws ahfic::Error otherwise):
  /// sessions are in-memory engines; persistence belongs to the caller.
  explicit Session(RunnerOptions opts = {});

  /// Executes one batch on the shared engine. Thread-safe; concurrent
  /// batches interleave on the shared cache without blocking each other.
  BatchResult run(const std::vector<Job>& jobs);

  /// The session-wide result cache (shared with the engine).
  ResultCache& cache() { return runner_.cache(); }
  const RunnerOptions& options() const { return runner_.options(); }

  /// Batches executed so far (monotonic; informational).
  size_t batchesRun() const { return batches_.load(); }

  // ---- warm text store ----
  // Side-channel for per-key artefacts that cannot live in a JobResult
  // (metric doubles only): listings, rendered pages. Keyed by the same
  // job key as the result cache, so "result cache hit + text fetch"
  // reconstructs a full prior response.

  /// Inserts or overwrites the text artefact for `key`.
  void storeText(const std::string& key, std::string text);
  /// Returns the stored artefact, or nullopt.
  std::optional<std::string> fetchText(const std::string& key) const;
  size_t textCount() const;

 private:
  BatchRunner runner_;
  std::atomic<size_t> batches_{0};
  mutable util::Mutex textMu_;
  std::unordered_map<std::string, std::string> texts_
      AHFIC_GUARDED_BY(textMu_);
};

}  // namespace ahfic::runner
