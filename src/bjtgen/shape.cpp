#include "bjtgen/shape.h"

#include <cctype>
#include <cstdio>
#include <vector>

#include "util/error.h"

namespace ahfic::bjtgen {

double TransistorShape::emitterArea() const {
  return emitterWidth * emitterLength * emitterStripes;
}

double TransistorShape::emitterPerimeter() const {
  return 2.0 * (emitterWidth + emitterLength) * emitterStripes;
}

bool TransistorShape::fullyInterdigitated() const {
  return baseStripes >= emitterStripes + 1;
}

namespace {

std::string trimZeros(double microns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", microns);
  return buf;
}

char baseCode(int stripes) {
  switch (stripes) {
    case 1:
      return 'S';
    case 2:
      return 'D';
    case 3:
      return 'T';
    default:
      throw ahfic::Error("unsupported base stripe count " +
                         std::to_string(stripes));
  }
}

int baseStripesFromCode(char c) {
  switch (c) {
    case 'S':
    case 's':
      return 1;
    case 'D':
    case 'd':
      return 2;
    case 'T':
    case 't':
      return 3;
    default:
      throw ahfic::ParseError(std::string("bad base code '") + c +
                              "' (expected S, D or T)");
  }
}

}  // namespace

std::string TransistorShape::name() const {
  std::string out = "N" + trimZeros(emitterWidth * 1e6);
  if (emitterStripes > 1) out += "x" + std::to_string(emitterStripes);
  out += "-" + trimZeros(emitterLength * 1e6);
  out += baseCode(baseStripes);
  return out;
}

TransistorShape TransistorShape::fromName(const std::string& name) {
  // N<width>[x<stripes>]-<length><S|D|T>
  if (name.size() < 5 || (name[0] != 'N' && name[0] != 'n'))
    throw ahfic::ParseError("shape name must start with 'N': " + name);
  size_t i = 1;
  auto readNumber = [&]() {
    size_t start = i;
    while (i < name.size() &&
           (std::isdigit(static_cast<unsigned char>(name[i])) ||
            name[i] == '.'))
      ++i;
    if (i == start)
      throw ahfic::ParseError("expected a number in shape name: " + name);
    return std::stod(name.substr(start, i - start));
  };

  TransistorShape s;
  s.emitterWidth = readNumber() * 1e-6;
  if (i < name.size() && (name[i] == 'x' || name[i] == 'X')) {
    ++i;
    s.emitterStripes = static_cast<int>(readNumber());
    if (s.emitterStripes < 1 || s.emitterStripes > 16)
      throw ahfic::ParseError("emitter stripe count out of range: " + name);
  }
  if (i >= name.size() || name[i] != '-')
    throw ahfic::ParseError("expected '-' in shape name: " + name);
  ++i;
  s.emitterLength = readNumber() * 1e-6;
  if (i + 1 != name.size())
    throw ahfic::ParseError("trailing characters in shape name: " + name);
  s.baseStripes = baseStripesFromCode(name[i]);
  if (s.emitterWidth <= 0 || s.emitterLength <= 0)
    throw ahfic::ParseError("shape dimensions must be positive: " + name);
  return s;
}

std::vector<TransistorShape> fig8Shapes() {
  return {
      TransistorShape::fromName("N1.2-6S"),    // (a)
      TransistorShape::fromName("N1.2-6D"),    // (b)
      TransistorShape::fromName("N2.4-6D"),    // (c)
      TransistorShape::fromName("N1.2x2-6S"),  // (d)
      TransistorShape::fromName("N1.2-12D"),   // (e)
      TransistorShape::fromName("N1.2x2-6T"),  // (f)
  };
}

std::vector<TransistorShape> fig9Shapes() {
  return {
      TransistorShape::fromName("N1.2-6D"),
      TransistorShape::fromName("N1.2-12D"),
      TransistorShape::fromName("N1.2-24D"),
      TransistorShape::fromName("N1.2-48D"),
  };
}

}  // namespace ahfic::bjtgen
