#pragma once
// Monte-Carlo process variation. The paper's Sec. 2 motivates system-level
// simulation with "IC process variations" in mind; this module provides
// the die-to-die variation model for the bipolar process so those studies
// can be run against the transistor-level substrate too.
//
// Variation model: each die draws one correlated set of process
// perturbations (sheet resistances, contact resistivities, capacitance and
// current densities, transit time); every transistor generated for that
// die uses the perturbed technology. Local (device-to-device) mismatch is
// modelled as a small independent perturbation of IS and BF per generated
// card.

#include <cstdint>

#include "bjtgen/generator.h"
#include "bjtgen/process.h"
#include "util/numeric.h"

namespace ahfic::bjtgen {

/// Relative 1-sigma die-to-die variations (lognormal-ish via exp(N*s)).
struct ProcessVariation {
  double sheetResistance = 0.10;  ///< all resistive layers (correlated)
  double contactRho = 0.15;
  double capDensity = 0.06;       ///< junction capacitance densities
  double currentDensity = 0.12;   ///< saturation/knee current densities
  double transitTime = 0.05;      ///< tf0
  /// Local device-to-device mismatch (1-sigma, relative) applied to IS
  /// and BF of each generated card.
  double localMismatch = 0.01;
};

/// Draws one die: the nominal technology with correlated perturbations.
Technology sampleTechnology(const Technology& nominal,
                            const ProcessVariation& var, util::Rng& rng);

/// One die drawn from its own RNG stream seeded with `dieSeed`. Unlike
/// MonteCarloGenerator::sampleDie (which advances shared sequential
/// state), this is a pure function of its arguments — the building block
/// the batch runner fans out so die k is identical no matter which worker
/// thread draws it or in what order.
ModelGenerator dieGenerator(const Technology& nominal,
                            const ProcessVariation& var,
                            std::uint64_t dieSeed);

/// Local (device-to-device) IS/BF mismatch drawn from an explicit RNG
/// stream; the per-die equivalent of MonteCarloGenerator::withLocalMismatch.
spice::BjtModel withLocalMismatch(const spice::BjtModel& card,
                                  const ProcessVariation& var,
                                  util::Rng& rng);

/// Named worst-case corners, the deterministic companions of the
/// Monte-Carlo draw. kSlow: high resistances/capacitances, long transit
/// time; kFast: the opposite. `sigmas` sets how far out the corner sits
/// (the usual practice is 3).
enum class Corner { kSlow, kTypical, kFast };
Technology cornerTechnology(const Technology& nominal,
                            const ProcessVariation& var, Corner corner,
                            double sigmas = 3.0);

/// A ModelGenerator anchored on the given corner of the default process.
ModelGenerator cornerGenerator(Corner corner, double sigmas = 3.0);

/// Per-die model generator factory.
class MonteCarloGenerator {
 public:
  MonteCarloGenerator(Technology nominal, ProcessVariation var,
                      std::uint64_t seed = 1);

  /// Next die: a ModelGenerator whose technology and reference card are
  /// both perturbed (the reference device sits on the same die).
  ModelGenerator sampleDie();

  /// Applies local mismatch to a generated card (call per instance).
  spice::BjtModel withLocalMismatch(const spice::BjtModel& card);

  const ProcessVariation& variation() const { return var_; }

 private:
  Technology nominal_;
  ProcessVariation var_;
  util::Rng rng_;
};

}  // namespace ahfic::bjtgen
