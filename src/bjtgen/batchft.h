#pragma once
// Batched analytic fT measurement across a block of model cards — the
// Monte-Carlo data plane behind the runner's `mc-ft` workload.
//
// The scalar path (FtExtractor::measureAnalyticAt) builds a fresh bias
// circuit and Analyzer for EVERY bisection evaluation: ~17 circuit
// constructions, pattern primings and symbolic analyses per die. A
// Monte-Carlo block perturbs only the model card — the topology is the
// same two-source/one-transistor cell for every die — so all of that
// structure work is shared here through spice::ReplicaBatch, and the
// bisection runs in masked lockstep: one batched operating point per
// bisection step solves every still-active die at its own trial Vbe.
//
// Bit-identity contract: with `opts.solver = SolverKind::kSparse`, entry
// r of measureAnalyticAt(ic) is bit-identical (ft, vbe hex-float equal)
// to `FtExtractor(cards[r], vce, opts).measureAnalyticAt(ic)`, because
// ReplicaBatch::op() reproduces a fresh sparse Analyzer::op() bit-for-bit
// and the per-die bisection trajectory (lo/hi/mid sequence, convergence
// test) is the scalar code's. A die whose bias bracket rejects the target
// reports ok = false with the scalar error text instead of throwing, so
// one bad die does not take down the block.

#include <string>
#include <vector>

#include "spice/analysis.h"
#include "spice/batch.h"
#include "spice/bjt.h"
#include "spice/models.h"
#include "spice/sources.h"

#include "bjtgen/ft.h"

namespace ahfic::bjtgen {

/// Per-card outcome of a batched measurement.
struct BatchFtPoint {
  FtPoint point;
  bool ok = false;
  std::string error;  ///< scalar FtExtractor error text when !ok
};

/// Measures analytic fT of a block of model cards biased at Vce, sharing
/// circuit structure across the block. Construction cost is one pattern
/// priming + one symbolic analysis for the whole block; per measurement
/// each die pays numeric work only.
class BatchFtExtractor {
 public:
  /// `forceFullFactor` disables the shared-structure refactorization
  /// replay (every Newton iteration pays a pivoting factorization) — an
  /// ablation knob for bench_mc_batch, not a production option.
  explicit BatchFtExtractor(std::vector<spice::BjtModel> cards,
                            double vce = 2.0,
                            spice::AnalysisOptions opts = {},
                            bool forceFullFactor = false);

  int cardCount() const { return batch_.replicaCount(); }

  /// Lockstep bisection for Vbe with ic(vbe) = ic, then fT from the
  /// operating-point formula — FtExtractor::measureAnalyticAt for every
  /// card at once. Throws on ic <= 0 (scalar contract); per-die bias
  /// bracket failures are reported in the outcome instead.
  std::vector<BatchFtPoint> measureAnalyticAt(double ic);

  /// Batch-engine counters since construction.
  const spice::BatchStats& batchStats() const { return batch_.stats(); }

  /// Solver work in AnalyzerStats shape (newton iterations and matrix
  /// solves summed over replicas) — the runner's manifest feed, matching
  /// FtExtractor::solverStats().
  const spice::AnalyzerStats& solverStats() const { return stats_; }
  void resetSolverStats() { stats_ = {}; }

 private:
  /// One batched operating point; returns per-die collector current
  /// (the -I(VC) readback of the scalar icAtVbe).
  std::vector<double> icAll();
  void setVbe(int r, double vbe);

  double vce_;
  spice::ReplicaBatch batch_;
  std::vector<spice::VSource*> vb_;  ///< per-replica base source
  std::vector<spice::VSource*> vc_;  ///< per-replica collector source
  std::vector<spice::Bjt*> q_;       ///< per-replica transistor
  spice::BatchStats seen_;           ///< batch counters already absorbed
  spice::AnalyzerStats stats_;
};

}  // namespace ahfic::bjtgen
