#pragma once
// Geometry engine: derives layout areas, perimeters and parasitic
// resistances from a transistor shape and the technology's design rules.
//
// This is the core of the paper's Sec. 4 argument: RB, RE, RC, CJE, CJC
// and CJS "depend not only on the emitter area but also on their perimeter
// and their specific device geometry" — so they are computed here from the
// stripe topology, not scaled by a single area factor.

#include "bjtgen/process.h"
#include "bjtgen/shape.h"

namespace ahfic::bjtgen {

/// Geometry-dependent quantities of one laid-out transistor.
struct GeometrySummary {
  // Junction geometry.
  double emitterArea = 0.0;       ///< [m^2]
  double emitterPerimeter = 0.0;  ///< [m]
  double baseArea = 0.0;          ///< B-C junction footprint [m^2]
  double basePerimeter = 0.0;     ///< [m]
  double collectorArea = 0.0;     ///< C-substrate footprint [m^2]
  double collectorPerimeter = 0.0;///< [m]

  // Stripe topology.
  double contactedSidesPerStripe = 1.0;  ///< 1 (single) .. 2 (interdig.)

  // Parasitic resistances.
  double rbIntrinsic = 0.0;  ///< pinched-base spreading resistance [ohm]
  double rbExtrinsic = 0.0;  ///< link + contact resistance [ohm]
  double re = 0.0;           ///< emitter contact/poly resistance [ohm]
  double rc = 0.0;           ///< vertical + buried-layer resistance [ohm]

  /// Zero-bias SPICE RB (intrinsic + extrinsic).
  double rbTotal() const { return rbIntrinsic + rbExtrinsic; }
  /// High-current SPICE RBM: crowding removes most of the intrinsic part.
  double rbMin() const { return rbExtrinsic + 0.15 * rbIntrinsic; }
};

/// Evaluates the layout geometry of `shape` under `tech`'s design rules.
/// Throws ahfic::Error for non-physical shapes (e.g. more base stripes
/// than the alternating layout allows).
GeometrySummary computeGeometry(const TransistorShape& shape,
                                const Technology& tech);

/// Geometry-dependent model quantities used for parameter scaling.
struct ElectricalGeometry {
  double is = 0.0;    ///< saturation current (area + perimeter) [A]
  double ise = 0.0;   ///< B-E perimeter recombination [A]
  double ikf = 0.0;   ///< high-injection knee [A]
  double irb = 0.0;   ///< base-resistance knee [A]
  double itf = 0.0;   ///< TF bias-dependence current [A]
  double cje = 0.0;   ///< [F]
  double cjc = 0.0;   ///< [F]
  double cjs = 0.0;   ///< [F]
  double xcjc = 1.0;  ///< fraction of CJC under the emitter
  double rb = 0.0, rbm = 0.0, re = 0.0, rc = 0.0;  ///< [ohm]
};

/// Evaluates the electrical geometry quantities for `shape`.
ElectricalGeometry computeElectrical(const TransistorShape& shape,
                                     const Technology& tech);

}  // namespace ahfic::bjtgen
