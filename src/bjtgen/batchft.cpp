#include "bjtgen/batchft.h"

#include <cmath>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/circuit.h"
#include "spice/solution.h"
#include "util/error.h"

namespace ahfic::bjtgen {

namespace sp = ahfic::spice;

BatchFtExtractor::BatchFtExtractor(std::vector<spice::BjtModel> cards,
                                   double vce, spice::AnalysisOptions opts,
                                   bool forceFullFactor)
    : vce_(vce),
      batch_([&] {
        if (vce <= 0.0) throw Error("BatchFtExtractor: vce must be > 0");
        if (cards.empty()) throw Error("BatchFtExtractor: no cards");
        // The scalar icAtVbe bias cell, one replica per card. Device
        // order matters: VB, VC, Q1 — identical unknown layout to the
        // scalar circuit is what the bit-identity contract rests on.
        std::vector<std::unique_ptr<sp::Circuit>> replicas;
        replicas.reserve(cards.size());
        for (const auto& card : cards) {
          auto ckt = std::make_unique<sp::Circuit>();
          const int c = ckt->node("c"), b = ckt->node("b");
          ckt->add<sp::VSource>("VB", b, 0, 0.0);
          ckt->add<sp::VSource>("VC", c, 0, vce);
          ckt->add<sp::Bjt>("Q1", *ckt, c, b, 0, card);
          replicas.push_back(std::move(ckt));
        }
        sp::ReplicaBatch::Options bo;
        bo.analysis = opts;
        bo.forceFullFactor = forceFullFactor;
        return sp::ReplicaBatch(std::move(replicas), bo);
      }()) {
  const int R = batch_.replicaCount();
  vb_.resize(static_cast<size_t>(R));
  vc_.resize(static_cast<size_t>(R));
  q_.resize(static_cast<size_t>(R));
  for (int r = 0; r < R; ++r) {
    auto& ckt = batch_.circuit(r);
    vb_[static_cast<size_t>(r)] =
        dynamic_cast<sp::VSource*>(ckt.findDevice("VB"));
    vc_[static_cast<size_t>(r)] =
        dynamic_cast<sp::VSource*>(ckt.findDevice("VC"));
    q_[static_cast<size_t>(r)] = dynamic_cast<sp::Bjt*>(ckt.findDevice("Q1"));
  }
}

void BatchFtExtractor::setVbe(int r, double vbe) {
  vb_[static_cast<size_t>(r)]->setWaveform(
      std::make_unique<sp::DcWaveform>(vbe));
}

std::vector<double> BatchFtExtractor::icAll() {
  const auto res = batch_.op();
  // Fold the batch's new counters into the AnalyzerStats view.
  const sp::BatchStats& bs = batch_.stats();
  stats_.newtonIterations += bs.newtonIterations - seen_.newtonIterations;
  stats_.matrixSolves += bs.matrixSolves - seen_.matrixSolves;
  seen_ = bs;
  std::vector<double> ic(res.x.size());
  for (size_t r = 0; r < res.x.size(); ++r) {
    sp::Solution s(&res.x[r]);
    ic[r] = -s.at(vc_[r]->branchId());
  }
  return ic;
}

std::vector<BatchFtPoint> BatchFtExtractor::measureAnalyticAt(double ic) {
  if (ic <= 0.0) throw Error("FtExtractor: ic must be > 0");
  static const obs::Counter extractions =
      obs::counter("bjtgen.ft_extractions");
  extractions.add(batch_.replicaCount());
  obs::ScopedSpan span("bjtgen.ft_extract_batch", "bjtgen");

  const size_t R = static_cast<size_t>(batch_.replicaCount());
  std::vector<BatchFtPoint> out(R);
  std::vector<double> lo(R, 0.3), hi(R, 1.15), vbe(R, 0.0);
  std::vector<char> active(R, 0);

  // Bracket check at the scalar endpoints, all dies at once.
  for (size_t r = 0; r < R; ++r) setVbe(static_cast<int>(r), 0.3);
  const std::vector<double> iLo = icAll();
  for (size_t r = 0; r < R; ++r) setVbe(static_cast<int>(r), 1.15);
  const std::vector<double> iHi = icAll();
  for (size_t r = 0; r < R; ++r) {
    if (ic <= iLo[r] || ic >= iHi[r]) {
      out[r].ok = false;
      out[r].error = "FtExtractor: target current out of bias range";
    } else {
      out[r].ok = true;
      active[r] = 1;
    }
  }

  // Masked lockstep bisection: each die walks the exact lo/hi/mid
  // trajectory of the scalar solveBias; converged or failed dies stop
  // updating but keep riding the block solves.
  bool anyActive = false;
  for (size_t r = 0; r < R; ++r) anyActive = anyActive || active[r];
  for (int iter = 0; iter < 60 && anyActive; ++iter) {
    for (size_t r = 0; r < R; ++r)
      if (active[r]) setVbe(static_cast<int>(r), 0.5 * (lo[r] + hi[r]));
    const std::vector<double> iMid = icAll();
    anyActive = false;
    for (size_t r = 0; r < R; ++r) {
      if (!active[r]) continue;
      const double mid = 0.5 * (lo[r] + hi[r]);
      if (std::fabs(iMid[r] - ic) < 1e-3 * ic) {
        vbe[r] = mid;
        active[r] = 0;
        continue;
      }
      if (iMid[r] < ic)
        lo[r] = mid;
      else
        hi[r] = mid;
      anyActive = true;
    }
  }
  for (size_t r = 0; r < R; ++r)
    if (active[r]) vbe[r] = 0.5 * (lo[r] + hi[r]);  // scalar 60-iter exit

  // Final operating point at each die's converged Vbe; fT from the
  // analytic formula on that op, exactly measureAnalyticAt's tail.
  for (size_t r = 0; r < R; ++r)
    setVbe(static_cast<int>(r), out[r].ok ? vbe[r] : 0.3);
  const auto res = batch_.op();
  const sp::BatchStats& bs = batch_.stats();
  stats_.newtonIterations += bs.newtonIterations - seen_.newtonIterations;
  stats_.matrixSolves += bs.matrixSolves - seen_.matrixSolves;
  seen_ = bs;
  for (size_t r = 0; r < R; ++r) {
    if (!out[r].ok) continue;
    sp::Solution s(&res.x[r]);
    out[r].point.ic = ic;
    out[r].point.vbe = vbe[r];
    out[r].point.ft = q_[r]->opInfo(s).ft();
  }
  return out;
}

}  // namespace ahfic::bjtgen
