#include "bjtgen/montecarlo.h"

#include <cmath>

#include "util/error.h"

namespace ahfic::bjtgen {

namespace {

/// Lognormal factor exp(sigma * N(0,1)): always positive, median 1.
double factor(util::Rng& rng, double sigma) {
  return std::exp(sigma * rng.normal());
}

/// The reference shape every generator anchors on. Parsed once — the MC
/// batch path calls dieGenerator once per replica, and re-parsing the
/// shape string inside that loop is pure waste.
const TransistorShape& referenceShape() {
  static const TransistorShape shape = TransistorShape::fromName("N1.2-6S");
  return shape;
}

}  // namespace

Technology sampleTechnology(const Technology& nominal,
                            const ProcessVariation& var, util::Rng& rng) {
  Technology t = nominal;
  ProcessData& p = t.process;

  // Resistive layers move together (shared implant/anneal steps), with a
  // smaller independent component per layer.
  const double rhoCommon = factor(rng, var.sheetResistance);
  p.pinchedBaseSheet *= rhoCommon * factor(rng, var.sheetResistance / 3.0);
  p.extrinsicBaseSheet *= rhoCommon * factor(rng, var.sheetResistance / 3.0);
  p.buriedLayerSheet *= rhoCommon * factor(rng, var.sheetResistance / 3.0);
  p.baseContactRho *= factor(rng, var.contactRho);
  p.emitterContactRho *= factor(rng, var.contactRho);
  p.collectorVerticalRho *= factor(rng, var.contactRho);

  const double capCommon = factor(rng, var.capDensity);
  p.cjeArea *= capCommon;
  p.cjePerim *= capCommon;
  p.cjcArea *= capCommon;
  p.cjcPerim *= capCommon;
  p.cjsArea *= capCommon;
  p.cjsPerim *= capCommon;

  const double jCommon = factor(rng, var.currentDensity);
  p.jsArea *= jCommon;
  p.jsPerim *= jCommon;
  p.jseePerim *= factor(rng, var.currentDensity);
  p.jKnee *= factor(rng, var.currentDensity);
  p.jIrb *= factor(rng, var.currentDensity);
  p.jItf *= factor(rng, var.currentDensity);

  p.tf0 *= factor(rng, var.transitTime);
  return t;
}

Technology cornerTechnology(const Technology& nominal,
                            const ProcessVariation& var, Corner corner,
                            double sigmas) {
  if (corner == Corner::kTypical) return nominal;
  // Slow silicon: everything that hurts speed moves out together.
  const double dir = (corner == Corner::kSlow) ? +1.0 : -1.0;
  auto f = [&](double sigma) { return std::exp(dir * sigmas * sigma); };

  Technology t = nominal;
  ProcessData& p = t.process;
  p.pinchedBaseSheet *= f(var.sheetResistance);
  p.extrinsicBaseSheet *= f(var.sheetResistance);
  p.buriedLayerSheet *= f(var.sheetResistance);
  p.baseContactRho *= f(var.contactRho);
  p.emitterContactRho *= f(var.contactRho);
  p.collectorVerticalRho *= f(var.contactRho);
  p.cjeArea *= f(var.capDensity);
  p.cjePerim *= f(var.capDensity);
  p.cjcArea *= f(var.capDensity);
  p.cjcPerim *= f(var.capDensity);
  p.cjsArea *= f(var.capDensity);
  p.cjsPerim *= f(var.capDensity);
  p.tf0 *= f(var.transitTime);
  // Current densities move the other way on slow silicon (lower knee =
  // earlier droop).
  p.jKnee /= f(var.currentDensity);
  p.jItf /= f(var.currentDensity);
  return t;
}

ModelGenerator dieGenerator(const Technology& nominal,
                            const ProcessVariation& var,
                            std::uint64_t dieSeed) {
  util::Rng rng(dieSeed);
  const Technology die = sampleTechnology(nominal, var, rng);
  return ModelGenerator(die, referenceShape(),
                        referenceModelFor(die));
}

spice::BjtModel withLocalMismatch(const spice::BjtModel& card,
                                  const ProcessVariation& var,
                                  util::Rng& rng) {
  spice::BjtModel m = card;
  m.is *= factor(rng, var.localMismatch);
  m.bf *= factor(rng, var.localMismatch);
  return m;
}

ModelGenerator cornerGenerator(Corner corner, double sigmas) {
  const Technology tech = cornerTechnology(
      defaultTechnology(), ProcessVariation{}, corner, sigmas);
  return ModelGenerator(tech, referenceShape(),
                        referenceModelFor(tech));
}

MonteCarloGenerator::MonteCarloGenerator(Technology nominal,
                                         ProcessVariation var,
                                         std::uint64_t seed)
    : nominal_(nominal), var_(var), rng_(seed) {}

ModelGenerator MonteCarloGenerator::sampleDie() {
  const Technology die = sampleTechnology(nominal_, var_, rng_);
  return ModelGenerator(die, referenceShape(),
                        referenceModelFor(die));
}

spice::BjtModel MonteCarloGenerator::withLocalMismatch(
    const spice::BjtModel& card) {
  return bjtgen::withLocalMismatch(card, var_, rng_);
}

}  // namespace ahfic::bjtgen
