#pragma once
// Transistor shape descriptors and the paper's shape-name codec.
//
// The paper (Fig. 8) selects bipolar transistor shapes by emitter stripe
// width/length, the number of emitter stripes, and the number of base
// stripes ("single", "double", "triple" base). Names follow the paper's
// convention:
//
//   N<width>[x<stripes>]-<length><S|D|T>
//
//   N1.2-6S    single 1.2 um x 6 um emitter, single base stripe
//   N1.2-6D    same emitter, base stripes on both sides
//   N2.4-6D    wider (2.4 um) emitter, double base
//   N1.2x2-6S  two 1.2 um x 6 um emitter stripes, single-base pattern
//   N1.2-12D   longer (12 um) emitter, double base
//   N1.2x2-6T  two emitter stripes fully interdigitated (triple base)
//
// Dimensions are stored in metres.

#include <string>
#include <vector>

namespace ahfic::bjtgen {

/// Geometric description of an NPN transistor layout.
struct TransistorShape {
  double emitterWidth = 1.2e-6;   ///< stripe width [m]
  double emitterLength = 6.0e-6;  ///< stripe length [m]
  int emitterStripes = 1;         ///< parallel emitter stripes
  int baseStripes = 1;            ///< base contact stripes (1..stripes+1)

  /// Total emitter area [m^2].
  double emitterArea() const;
  /// Total emitter perimeter [m].
  double emitterPerimeter() const;
  /// True when every emitter stripe sees base contacts on both sides
  /// (fully interdigitated: baseStripes == emitterStripes + 1).
  bool fullyInterdigitated() const;

  /// Canonical paper-style name, e.g. "N1.2x2-6T".
  std::string name() const;

  /// Parses a paper-style name; throws ahfic::ParseError on bad syntax.
  static TransistorShape fromName(const std::string& name);

  bool operator==(const TransistorShape& o) const = default;
};

/// The six shapes of the paper's Fig. 8 (a)-(f), in order.
/// (d) and (f) are the "double emitter" variants with each stripe equal to
/// shape (a)'s emitter; (f) is fully interdigitated (triple base).
std::vector<TransistorShape> fig8Shapes();

/// The four shapes whose fT-Ic curves appear in Fig. 9.
std::vector<TransistorShape> fig9Shapes();

}  // namespace ahfic::bjtgen
