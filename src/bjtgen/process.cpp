#include "bjtgen/process.h"

#include "bjtgen/geometry.h"
#include "bjtgen/shape.h"

namespace ahfic::bjtgen {

Technology defaultTechnology() {
  return Technology{};  // field defaults are the calibrated process
}

spice::BjtModel referenceModel() {
  return referenceModelFor(defaultTechnology());
}

spice::BjtModel referenceModelFor(const Technology& tech) {
  const TransistorShape ref = TransistorShape::fromName("N1.2-6S");
  const ElectricalGeometry g = computeElectrical(ref, tech);

  spice::BjtModel m;
  // Shape-independent (vertical profile) parameters of the synthetic
  // process: gains, Early voltages, junction potentials, transit times.
  m.bf = 110.0;
  m.br = 8.0;
  m.nf = 1.0;
  m.nr = 1.0;
  m.vaf = 45.0;
  m.var = 12.0;
  m.ne = 1.8;
  m.nc = 1.9;
  m.vje = 0.85;
  m.mje = 0.35;
  m.vjc = 0.65;
  m.mjc = 0.33;
  m.vjs = 0.55;
  m.mjs = 0.40;
  m.fc = 0.5;
  m.tf = tech.process.tf0;
  m.xtf = 4.0;    // fT droop shaping beyond the knee
  m.vtf = 2.5;
  m.tr = tech.process.tr0;
  m.isc = 5e-16;

  // Geometry-dependent values at the reference shape (the synthetic
  // stand-in for measurements on the reference device).
  m.is = g.is;
  m.ise = g.ise;
  m.ikf = g.ikf;
  m.irb = g.irb;
  m.itf = g.itf;
  m.cje = g.cje;
  m.cjc = g.cjc;
  m.cjs = g.cjs;
  m.xcjc = g.xcjc;
  m.rb = g.rb;
  m.rbm = g.rbm;
  m.re = g.re;
  m.rc = g.rc;
  return m;
}

}  // namespace ahfic::bjtgen
