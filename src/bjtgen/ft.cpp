#include "bjtgen/ft.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/circuit.h"
#include "spice/sources.h"
#include "util/error.h"
#include "util/numeric.h"

namespace ahfic::bjtgen {

namespace sp = ahfic::spice;

FtExtractor::FtExtractor(spice::BjtModel model, double vce,
                         spice::AnalysisOptions opts)
    : model_(model), vce_(vce), opts_(opts) {
  if (vce <= 0.0) throw Error("FtExtractor: vce must be > 0");
}

void FtExtractor::absorb(const spice::AnalyzerStats& s) const {
  stats_.newtonIterations += s.newtonIterations;
  stats_.matrixSolves += s.matrixSolves;
  stats_.acceptedSteps += s.acceptedSteps;
  stats_.rejectedSteps += s.rejectedSteps;
  stats_.gminSteps += s.gminSteps;
  stats_.sourceSteps += s.sourceSteps;
}

namespace {

/// Collector current of a voltage-driven common-emitter bias cell.
double icAtVbe(const spice::BjtModel& model, double vbe, double vce,
               const sp::AnalysisOptions& opts,
               sp::AnalyzerStats* statsOut) {
  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::VSource>("VB", b, 0, vbe);
  auto& vc = ckt.add<sp::VSource>("VC", c, 0, vce);
  ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, model);
  sp::Analyzer an(ckt, opts);
  const auto x = an.op();
  if (statsOut != nullptr) *statsOut = an.stats();
  sp::Solution s(&x);
  return -s.at(vc.branchId());
}

}  // namespace

double FtExtractor::solveBias(double icTarget) const {
  if (icTarget <= 0.0) throw Error("FtExtractor: ic must be > 0");
  sp::AnalyzerStats st;
  auto icAt = [&](double vbe) {
    const double ic = icAtVbe(model_, vbe, vce_, opts_, &st);
    absorb(st);
    return ic;
  };
  double lo = 0.3, hi = 1.15;
  double iLo = icAt(lo);
  double iHi = icAt(hi);
  if (icTarget <= iLo || icTarget >= iHi)
    throw Error("FtExtractor: target current out of bias range");
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double iMid = icAt(mid);
    if (std::fabs(iMid - icTarget) < 1e-3 * icTarget) return mid;
    if (iMid < icTarget)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

FtPoint FtExtractor::measureAt(double ic) const {
  static const obs::Counter extractions =
      obs::counter("bjtgen.ft_extractions");
  extractions.add();
  obs::ScopedSpan span("bjtgen.ft_extract", "bjtgen");

  FtPoint pt;
  pt.ic = ic;
  pt.vbe = solveBias(ic);

  // Current-driven base reproducing the same operating point: ib from a
  // preliminary OP of the voltage-driven cell.
  sp::Circuit vckt;
  {
    const int c = vckt.node("c"), b = vckt.node("b");
    vckt.add<sp::VSource>("VB", b, 0, pt.vbe);
    vckt.add<sp::VSource>("VC", c, 0, vce_);
    vckt.add<sp::Bjt>("Q1", vckt, c, b, 0, model_);
  }
  double ib = 0.0;
  {
    sp::Analyzer an(vckt, opts_);
    const auto x = an.op();
    absorb(an.stats());
    sp::Solution s(&x);
    auto* vb = dynamic_cast<sp::VSource*>(vckt.findDevice("VB"));
    ib = -s.at(vb->branchId());
  }
  if (ib <= 0.0) throw Error("FtExtractor: non-positive base current");

  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::ISource>("IB", 0, b, ib, /*acMag=*/1.0);
  auto& vc = ckt.add<sp::VSource>("VC", c, 0, vce_);
  ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, model_);
  sp::Analyzer an(ckt, opts_);
  const auto op = an.op();
  absorb(an.stats());

  auto h21At = [&](double f) {
    const auto ac = an.ac({f}, op);
    // Each reuse-path AC call opens a fresh stats window; fold it in so
    // solverStats() keeps counting the whole extraction.
    absorb(an.stats());
    return std::abs(ac.unknown(0, vc.branchId()));
  };

  // Find a probe frequency inside the -20 dB/decade region: |h21| must
  // halve per octave (within 12%) and still be comfortably above unity
  // extrapolation noise.
  double f = 0.5e9;
  double ft = 0.0;
  for (int iter = 0; iter < 24; ++iter) {
    const double h1 = h21At(f);
    const double h2 = h21At(2.0 * f);
    const double octaveRatio = h1 / h2;
    if (std::fabs(octaveRatio - 2.0) < 0.24) {
      ft = f * h1;
      break;
    }
    if (octaveRatio < 2.0) {
      f *= 2.0;  // still on the flat beta plateau
    } else {
      f *= 0.5;  // beyond the single-pole region (higher-order rolloff)
    }
    if (f < 1e6 || f > 1e12) break;
  }
  if (ft == 0.0) {
    // Fall back to direct unity-gain search.
    double fLo = 1e6, fHi = 1e12;
    for (int i = 0; i < 48; ++i) {
      const double mid = std::sqrt(fLo * fHi);
      if (h21At(mid) > 1.0)
        fLo = mid;
      else
        fHi = mid;
    }
    ft = std::sqrt(fLo * fHi);
  }
  pt.ft = ft;
  return pt;
}

FtPoint FtExtractor::measureAnalyticAt(double ic) const {
  static const obs::Counter extractions =
      obs::counter("bjtgen.ft_extractions");
  extractions.add();
  obs::ScopedSpan span("bjtgen.ft_extract_analytic", "bjtgen");

  FtPoint pt;
  pt.ic = ic;
  pt.vbe = solveBias(ic);
  sp::Circuit ckt;
  const int c = ckt.node("c"), b = ckt.node("b");
  ckt.add<sp::VSource>("VB", b, 0, pt.vbe);
  ckt.add<sp::VSource>("VC", c, 0, vce_);
  auto& q = ckt.add<sp::Bjt>("Q1", ckt, c, b, 0, model_);
  sp::Analyzer an(ckt, opts_);
  const auto x = an.op();
  absorb(an.stats());
  sp::Solution s(&x);
  pt.ft = q.opInfo(s).ft();
  return pt;
}

std::vector<FtPoint> FtExtractor::sweep(
    const std::vector<double>& currents) const {
  std::vector<FtPoint> out;
  out.reserve(currents.size());
  for (double ic : currents) out.push_back(measureAt(ic));
  return out;
}

double FtExtractor::maxBiasCurrent() const {
  return icAtVbe(model_, 1.15, vce_, opts_, nullptr);
}

FtPeak FtExtractor::findPeak(double icMin, double icMax, int points) const {
  if (!(icMin > 0.0) || icMax <= icMin || points < 3)
    throw Error("FtExtractor::findPeak: bad scan range");
  icMax = std::min(icMax, 0.9 * maxBiasCurrent());
  if (icMax <= icMin)
    throw Error("FtExtractor::findPeak: range above device capability");
  std::vector<double> ics, fts;
  const double ratio = std::pow(icMax / icMin, 1.0 / (points - 1));
  double ic = icMin;
  for (int i = 0; i < points; ++i, ic *= ratio) {
    const auto pt = measureAt(ic);
    ics.push_back(pt.ic);
    fts.push_back(pt.ft);
  }
  const auto peak = util::findCurvePeak(ics, fts);
  return {peak.x, peak.y};
}

}  // namespace ahfic::bjtgen
