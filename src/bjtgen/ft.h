#pragma once
// fT (transition frequency) measurement harness.
//
// Reproduces the measurement behind the paper's Fig. 9: for a given model
// card, sweep collector current and extract fT. Two methods are provided:
//  * AC method: h21 = ic/ib from a small-signal analysis with the base
//    current-driven and the collector AC-grounded; in the -20 dB/decade
//    region fT = f * |h21(f)| (single-pole extrapolation) — this is how a
//    network analyser measurement is reduced.
//  * analytic method: gm / (2*pi*(Cpi + Cmu)) from the operating point.

#include <vector>

#include "spice/analysis.h"
#include "spice/models.h"

namespace ahfic::bjtgen {

/// One point of an fT-Ic characteristic.
struct FtPoint {
  double ic = 0.0;   ///< collector bias current [A]
  double vbe = 0.0;  ///< base-emitter bias found for that current [V]
  double ft = 0.0;   ///< transition frequency [Hz]
};

/// The peak of an fT-Ic curve.
struct FtPeak {
  double icPeak = 0.0;  ///< collector current of maximum fT [A]
  double ftPeak = 0.0;  ///< maximum fT [Hz]
};

/// Measures fT of one transistor model biased at Vce (default 2 V).
/// `opts` is handed to every internal Analyzer, so callers (notably the
/// runner's retry ladder) can loosen tolerances without rebuilding the
/// harness.
class FtExtractor {
 public:
  explicit FtExtractor(spice::BjtModel model, double vce = 2.0,
                       spice::AnalysisOptions opts = {});

  /// Solves for the Vbe that produces collector current `ic` (bisection on
  /// operating points), then extracts fT by the AC method.
  FtPoint measureAt(double ic) const;

  /// Same bias solve, but fT from the analytic operating-point formula.
  FtPoint measureAnalyticAt(double ic) const;

  /// AC-method sweep over the given currents.
  std::vector<FtPoint> sweep(const std::vector<double>& currents) const;

  /// Locates the fT peak over [icMin, icMax] with a log-spaced scan of
  /// `points` samples refined by parabolic interpolation. The upper bound
  /// is clamped to the largest current the bias cell can reach.
  FtPeak findPeak(double icMin, double icMax, int points = 25) const;

  /// The largest collector current reachable by the bias cell (deep high
  /// injection); sweep requests above ~90% of this are rejected.
  double maxBiasCurrent() const;

  /// Solver work accumulated over every measurement since construction
  /// (or the last resetSolverStats) — the per-job observability feed for
  /// the runner's manifests.
  const spice::AnalyzerStats& solverStats() const { return stats_; }
  void resetSolverStats() { stats_ = {}; }

 private:
  /// Finds vbe with ic(vbe) = target; returns vbe.
  double solveBias(double icTarget) const;
  /// Adds one internal Analyzer's counters to the accumulator.
  void absorb(const spice::AnalyzerStats& s) const;

  spice::BjtModel model_;
  double vce_;
  spice::AnalysisOptions opts_;
  mutable spice::AnalyzerStats stats_;
};

}  // namespace ahfic::bjtgen
