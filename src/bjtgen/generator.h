#pragma once
// The model parameter generation program of the paper's Sec. 4 (Fig. 10):
//
//   read reference transistor model parameters (measured anchor card)
//   read transistor process and mask data
//   extract the transistor shape description
//   calculate geometry-dependent parameters for the new shape
//   emit a full SPICE model card
//
// Each geometry-dependent parameter of the target card is the reference
// value scaled by the ratio of the geometry model evaluated at the target
// and reference shapes — so the measured reference calibrates the absolute
// level and the geometry engine supplies the shape dependence. This is
// richer than SPICE's single AREA factor (the baseline, also provided).

#include <string>

#include "bjtgen/geometry.h"
#include "bjtgen/process.h"
#include "bjtgen/shape.h"
#include "spice/models.h"

namespace ahfic::bjtgen {

/// Generates per-shape SPICE model cards from a measured reference card
/// plus process/mask data.
class ModelGenerator {
 public:
  /// `referenceShape` must describe the device `referenceCard` was
  /// measured on.
  ModelGenerator(Technology tech, TransistorShape referenceShape,
                 spice::BjtModel referenceCard);

  /// Convenience: the default synthetic technology with its N1.2-6S
  /// reference device.
  static ModelGenerator withDefaultTechnology();

  /// Geometry-aware card for `shape` (the paper's method).
  spice::BjtModel generate(const TransistorShape& shape) const;
  /// Parses the shape name, then generates.
  spice::BjtModel generate(const std::string& shapeName) const;

  /// Baseline: SPICE AREA factor for `shape` relative to the reference
  /// emitter area. Using the *reference card* with this area factor is the
  /// insufficient scaling the paper criticises.
  double areaFactor(const TransistorShape& shape) const;

  /// Emits the generated card as a .MODEL line named after the shape
  /// (dots become 'p': N1.2-6D -> QN1p2_6D).
  std::string generateSpiceLine(const TransistorShape& shape) const;

  /// SPICE-safe model name for a shape.
  static std::string modelName(const TransistorShape& shape);

  const Technology& technology() const { return tech_; }
  const TransistorShape& referenceShape() const { return refShape_; }
  const spice::BjtModel& referenceCard() const { return refCard_; }

 private:
  Technology tech_;
  TransistorShape refShape_;
  spice::BjtModel refCard_;
  ElectricalGeometry refGeom_;
};

}  // namespace ahfic::bjtgen
