#pragma once
// Synthetic bipolar process description and mask design rules.
//
// The paper's generator consumes (1) a reference transistor model card
// "based on actual measurements", (2) "transistor process data" and (3)
// "its mask design rule" (Fig. 10). Toshiba's data is proprietary, so this
// module defines a self-consistent synthetic 0.8 um-class double-poly
// bipolar process, calibrated so the reference device N1.2-6S peaks near
// 9 GHz fT — consistent with the 5..10 GHz axis of the paper's Fig. 9.

#include "spice/models.h"

namespace ahfic::bjtgen {

/// Electrical process data: sheet resistances, contact resistivities and
/// junction capacitance/current densities. All SI (ohm/sq, ohm*m^2, F/m^2,
/// F/m, A/m^2, A/m).
struct ProcessData {
  // Resistive layers.
  double pinchedBaseSheet = 12e3;   ///< intrinsic base under the emitter [ohm/sq]
  double extrinsicBaseSheet = 180.0;///< extrinsic base link [ohm/sq]
  double baseContactRho = 60e-12;   ///< base contact resistivity [ohm*m^2]
  double emitterContactRho = 40e-12;///< emitter poly+contact [ohm*m^2]
  double buriedLayerSheet = 25.0;   ///< n+ buried layer [ohm/sq]
  double collectorVerticalRho = 90e-12;  ///< epi pedestal [ohm*m^2]

  // Junction capacitance densities.
  double cjeArea = 1.0e-3;   ///< B-E depletion [F/m^2] (= 1.0 fF/um^2)
  double cjePerim = 0.25e-9; ///< B-E sidewall [F/m]    (= 0.25 fF/um)
  double cjcArea = 0.45e-3;  ///< B-C depletion [F/m^2]
  double cjcPerim = 0.12e-9; ///< B-C sidewall [F/m]
  double cjsArea = 0.10e-3;  ///< C-substrate [F/m^2]
  double cjsPerim = 0.10e-9; ///< C-substrate sidewall [F/m]

  // Current densities.
  double jsArea = 9.0e-6;    ///< transport saturation density [A/m^2]
  double jsPerim = 2.0e-12;  ///< perimeter injection [A/m]
  double jseePerim = 1.2e-9; ///< B-E perimeter recombination (ISE) [A/m]
  double jKnee = 5.0e8;      ///< Kirk/high-injection knee density [A/m^2]
  double jIrb = 6.0e7;       ///< IRB current density [A/m^2]
  double jItf = 1.2e9;       ///< ITF density for TF bias dependence [A/m^2]

  // Shape-independent vertical parameters.
  double tf0 = 12.0e-12;     ///< ideal forward transit time [s]
  double tr0 = 2.0e-9;       ///< reverse transit time [s]
};

/// Mask design rules (minimum widths and spacings) [m].
struct DesignRules {
  double baseContactWidth = 1.0e-6;   ///< base contact stripe width
  double emitterBaseSpace = 0.8e-6;   ///< emitter edge to base contact
  double baseOverlapEnd = 1.2e-6;     ///< base diffusion past emitter ends
  double collectorWallSpace = 2.0e-6; ///< base to collector sinker
  double sinkerWidth = 1.5e-6;        ///< collector sinker stripe width
};

/// Everything the generator needs about the target technology.
struct Technology {
  ProcessData process;
  DesignRules rules;
};

/// The synthetic process used throughout the reproduction.
Technology defaultTechnology();

/// The measured reference device: shape N1.2-6S on defaultTechnology().
/// This is the anchor card the generator scales from; its values are the
/// geometry model evaluated at the reference shape (i.e. the synthetic
/// stand-in for the paper's "reference transistor model parameters ...
/// based on actual measurements" [5]).
spice::BjtModel referenceModel();

/// The reference device as it would measure on a *different* die: the
/// same N1.2-6S layout evaluated on `tech`. Used by the Monte-Carlo
/// process-variation study.
spice::BjtModel referenceModelFor(const Technology& tech);

}  // namespace ahfic::bjtgen
