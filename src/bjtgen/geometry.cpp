#include "bjtgen/geometry.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ahfic::bjtgen {

GeometrySummary computeGeometry(const TransistorShape& shape,
                                const Technology& tech) {
  const int nE = shape.emitterStripes;
  const int nB = shape.baseStripes;
  if (nE < 1 || nB < 1)
    throw Error("computeGeometry: stripe counts must be >= 1");
  if (nB > nE + 1)
    throw Error("computeGeometry: at most " + std::to_string(nE + 1) +
                " base stripes fit an alternating layout with " +
                std::to_string(nE) + " emitter stripe(s)");
  const double we = shape.emitterWidth;
  const double le = shape.emitterLength;
  const DesignRules& dr = tech.rules;
  const ProcessData& p = tech.process;

  GeometrySummary g;
  g.emitterArea = shape.emitterArea();
  g.emitterPerimeter = shape.emitterPerimeter();

  // Alternating stripe layout (B E B E ... ). Horizontal extent covers all
  // stripes plus inter-stripe spacings; vertical extent is the emitter
  // length plus base overlap at both ends.
  const int nStripes = nE + nB;
  const double extentW = nE * we + nB * dr.baseContactWidth +
                         (nStripes - 1) * dr.emitterBaseSpace;
  const double extentL = le + 2.0 * dr.baseOverlapEnd;
  g.baseArea = extentW * extentL;
  g.basePerimeter = 2.0 * (extentW + extentL);

  // Collector tub: base footprint plus the sinker stripe along one side.
  const double collW = extentW + dr.collectorWallSpace + dr.sinkerWidth;
  g.collectorArea = collW * extentL;
  g.collectorPerimeter = 2.0 * (collW + extentL);

  // Each emitter/base adjacency contacts one emitter side; an alternating
  // layout with nE + nB stripes has nE + nB - 1 adjacencies.
  const double sides =
      std::min(2.0, static_cast<double>(nE + nB - 1) / nE);
  g.contactedSidesPerStripe = sides;

  // Intrinsic (pinched) base spreading resistance. For a stripe contacted
  // on one side: rho_s * W / (3 L); on both sides: rho_s * W / (12 L)
  // (Gray & Meyer [3]). A smooth interpolation rho_s*W/(3*s^2*L) matches
  // both endpoints. Stripes are in parallel.
  g.rbIntrinsic =
      p.pinchedBaseSheet * we / (3.0 * sides * sides * le) / nE;

  // Extrinsic: link resistance under each adjacency (spacing plus half the
  // contact width, in parallel across adjacencies) plus contact resistance.
  const int nAdj = nE + nB - 1;
  const double linkLen = dr.emitterBaseSpace + 0.5 * dr.baseContactWidth;
  const double rLink = p.extrinsicBaseSheet * linkLen / extentL / nAdj;
  const double rContact =
      p.baseContactRho / (dr.baseContactWidth * extentL * nB);
  g.rbExtrinsic = rLink + rContact;

  // Emitter: contact/poly resistivity over the emitter area.
  g.re = p.emitterContactRho / g.emitterArea;

  // Collector: vertical pedestal under the emitter plus the buried-layer
  // path from the device centre to the sinker.
  const double rVertical = p.collectorVerticalRho / g.emitterArea;
  const double buriedPath =
      0.5 * extentW + dr.collectorWallSpace + 0.5 * dr.sinkerWidth;
  const double rBuried = p.buriedLayerSheet * buriedPath / extentL;
  g.rc = rVertical + rBuried;
  return g;
}

ElectricalGeometry computeElectrical(const TransistorShape& shape,
                                     const Technology& tech) {
  const GeometrySummary g = computeGeometry(shape, tech);
  const ProcessData& p = tech.process;

  ElectricalGeometry e;
  e.is = p.jsArea * g.emitterArea + p.jsPerim * g.emitterPerimeter;
  e.ise = p.jseePerim * g.emitterPerimeter;
  e.ikf = p.jKnee * g.emitterArea;
  e.irb = p.jIrb * g.emitterArea;
  e.itf = p.jItf * g.emitterArea;
  e.cje = p.cjeArea * g.emitterArea + p.cjePerim * g.emitterPerimeter;
  e.cjc = p.cjcArea * g.baseArea + p.cjcPerim * g.basePerimeter;
  e.cjs = p.cjsArea * g.collectorArea + p.cjsPerim * g.collectorPerimeter;
  // The internal-node fraction of CJC is the part directly under the
  // emitter stripes.
  e.xcjc = std::clamp(p.cjcArea * g.emitterArea / e.cjc, 0.05, 1.0);
  e.rb = g.rbTotal();
  e.rbm = g.rbMin();
  e.re = g.re;
  e.rc = g.rc;
  return e;
}

}  // namespace ahfic::bjtgen
