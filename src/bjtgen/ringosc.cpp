#include "bjtgen/ringosc.h"

#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"
#include "util/numeric.h"

namespace ahfic::bjtgen {

namespace sp = ahfic::spice;

RingOscillatorNodes buildRingOscillator(spice::Circuit& ckt,
                                        const RingOscillatorSpec& spec) {
  if (spec.stages < 3 || spec.stages % 2 == 0)
    throw Error("ring oscillator needs an odd stage count >= 3");
  if (spec.tailCurrent <= 0.0 || spec.collectorLoad <= 0.0 ||
      spec.followerLoad <= 0.0)
    throw Error("ring oscillator: currents and loads must be > 0");

  const int vcc = ckt.node("vcc");
  ckt.add<sp::VSource>("VCC", vcc, 0, spec.vcc);

  auto stageNode = [&](int stage, const char* base) {
    return ckt.node(std::string(base) + std::to_string(stage));
  };

  // Stage s reads inputs from stage s-1's follower outputs (fp/fn); the
  // ring closes from the last stage back to stage 0.
  for (int s = 0; s < spec.stages; ++s) {
    const int prev = (s + spec.stages - 1) % spec.stages;
    const int inp = stageNode(prev, "fp");
    const int inn = stageNode(prev, "fn");
    const int c1 = stageNode(s, "cp");
    const int c2 = stageNode(s, "cn");
    const int e = stageNode(s, "e");
    const int f1 = stageNode(s, "fp");
    const int f2 = stageNode(s, "fn");
    const std::string id = std::to_string(s);

    // Collector loads.
    ckt.add<sp::Resistor>("Rc1_" + id, vcc, c1, spec.collectorLoad);
    ckt.add<sp::Resistor>("Rc2_" + id, vcc, c2, spec.collectorLoad);
    // Differential pair (the optimised shape).
    ckt.add<sp::Bjt>("Qd1_" + id, ckt, c1, inp, e, spec.diffPairModel);
    ckt.add<sp::Bjt>("Qd2_" + id, ckt, c2, inn, e, spec.diffPairModel);
    // Tail current.
    ckt.add<sp::ISource>("Itail_" + id, e, 0, spec.tailCurrent);
    // Emitter followers (fixed shape) with pull-down loads.
    ckt.add<sp::Bjt>("Qf1_" + id, ckt, vcc, c1, f1, spec.followerModel);
    ckt.add<sp::Bjt>("Qf2_" + id, ckt, vcc, c2, f2, spec.followerModel);
    ckt.add<sp::Resistor>("Rf1_" + id, f1, 0, spec.followerLoad);
    ckt.add<sp::Resistor>("Rf2_" + id, f2, 0, spec.followerLoad);
  }

  // Start-up kick: a brief current pulse unbalances stage 0's collector.
  ckt.add<sp::ISource>(
      "Ikick", stageNode(0, "cp"), 0,
      std::make_unique<sp::PulseWaveform>(0.0, 0.5e-3, 0.0, 10e-12, 10e-12,
                                          150e-12, 1.0));

  RingOscillatorNodes nodes;
  nodes.vcc = "vcc";
  nodes.output = "fp" + std::to_string(spec.stages - 1);
  return nodes;
}

RingMeasurement measureRingFrequency(const RingOscillatorSpec& spec,
                                     double windowNs, double stepPs,
                                     spice::AnalysisOptions opts,
                                     spice::AnalyzerStats* statsOut) {
  static const obs::Counter measurements =
      obs::counter("bjtgen.ring_measurements");
  measurements.add();
  obs::ScopedSpan span("bjtgen.ring_measure", "bjtgen");

  sp::Circuit ckt;
  const auto nodes = buildRingOscillator(ckt, spec);
  sp::Analyzer an(ckt, opts);
  const double tstop = windowNs * 1e-9;
  const auto tr = an.transient(tstop, stepPs * 1e-12,
                               /*recordFrom=*/tstop * 0.25);
  if (statsOut != nullptr) *statsOut = an.stats();
  const auto v = tr.voltage(ckt.findNode(nodes.output));

  RingMeasurement m;
  m.peakToPeak = util::steadyStatePeakToPeak(tr.time, v, 0.3);
  const auto f = util::oscillationFrequency(tr.time, v, 0.3);
  if (f.has_value() && m.peakToPeak > 0.05) {
    m.frequency = *f;
    m.oscillating = true;
  }
  return m;
}

}  // namespace ahfic::bjtgen
