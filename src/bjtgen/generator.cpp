#include "bjtgen/generator.h"

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace ahfic::bjtgen {

namespace {

double ratio(double target, double reference, const char* what) {
  if (reference <= 0.0)
    throw Error(std::string("ModelGenerator: reference ") + what +
                " must be > 0");
  return target / reference;
}

}  // namespace

ModelGenerator::ModelGenerator(Technology tech, TransistorShape refShape,
                               spice::BjtModel refCard)
    : tech_(tech),
      refShape_(refShape),
      refCard_(refCard),
      refGeom_(computeElectrical(refShape, tech)) {}

ModelGenerator ModelGenerator::withDefaultTechnology() {
  return ModelGenerator(defaultTechnology(),
                        TransistorShape::fromName("N1.2-6S"),
                        referenceModel());
}

spice::BjtModel ModelGenerator::generate(const TransistorShape& shape) const {
  static const obs::Counter cards = obs::counter("bjtgen.model_cards");
  cards.add();
  const ElectricalGeometry g = computeElectrical(shape, tech_);
  spice::BjtModel m = refCard_;  // copy shape-independent parameters

  m.is = refCard_.is * ratio(g.is, refGeom_.is, "IS");
  m.ise = refCard_.ise * ratio(g.ise, refGeom_.ise, "ISE");
  m.ikf = refCard_.ikf * ratio(g.ikf, refGeom_.ikf, "IKF");
  m.irb = refCard_.irb * ratio(g.irb, refGeom_.irb, "IRB");
  m.itf = refCard_.itf * ratio(g.itf, refGeom_.itf, "ITF");
  // ISC tracks the B-C junction size (cjc geometry).
  m.isc = refCard_.isc * ratio(g.cjc, refGeom_.cjc, "CJC");

  m.cje = refCard_.cje * ratio(g.cje, refGeom_.cje, "CJE");
  m.cjc = refCard_.cjc * ratio(g.cjc, refGeom_.cjc, "CJC");
  m.cjs = refCard_.cjs * ratio(g.cjs, refGeom_.cjs, "CJS");
  m.xcjc = g.xcjc;  // a fraction: taken directly from the target layout

  m.rb = refCard_.rb * ratio(g.rb, refGeom_.rb, "RB");
  m.rbm = refCard_.rbm * ratio(g.rbm, refGeom_.rbm, "RBM");
  m.re = refCard_.re * ratio(g.re, refGeom_.re, "RE");
  m.rc = refCard_.rc * ratio(g.rc, refGeom_.rc, "RC");
  return m;
}

spice::BjtModel ModelGenerator::generate(const std::string& shapeName) const {
  return generate(TransistorShape::fromName(shapeName));
}

double ModelGenerator::areaFactor(const TransistorShape& shape) const {
  return shape.emitterArea() / refShape_.emitterArea();
}

std::string ModelGenerator::modelName(const TransistorShape& shape) {
  std::string n = "Q" + shape.name();
  n = util::replaceAll(n, ".", "p");
  n = util::replaceAll(n, "-", "_");
  return n;
}

std::string ModelGenerator::generateSpiceLine(
    const TransistorShape& shape) const {
  return generate(shape).toSpiceLine(modelName(shape));
}

}  // namespace ahfic::bjtgen
