#pragma once
// The paper's Fig. 11 test vehicle: a five-stage ECL ring oscillator.
//
// Each stage is a resistor-loaded differential pair followed by two
// emitter followers; stage outputs feed the next stage's differential
// inputs and the last stage closes the ring (the odd number of stages
// supplies the net inversion). Table 1 varies the *differential pair*
// transistor shape only — followers and passives stay fixed — exactly as
// the paper's optimisation did.

#include <string>

#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/models.h"

namespace ahfic::bjtgen {

/// Electrical configuration of the Fig. 11 oscillator.
struct RingOscillatorSpec {
  int stages = 5;
  double vcc = 5.0;               ///< supply [V]
  double tailCurrent = 3.0e-3;    ///< per-stage switch current [A]
  double collectorLoad = 170.0;   ///< R1/R2 [ohm] (~0.5 V swing)
  double followerLoad = 1.5e3;    ///< R3/R4 [ohm]
  spice::BjtModel diffPairModel;  ///< Q1/Q2... — the optimised shape
  spice::BjtModel followerModel;  ///< Q3/Q4... — fixed buffer shape
};

/// Node names of interest in a built oscillator.
struct RingOscillatorNodes {
  std::string vcc;
  std::string output;  ///< follower output of the last stage
};

/// Builds the oscillator into `ckt`. A short start-up current pulse on the
/// first stage breaks the symmetric (metastable) operating point.
RingOscillatorNodes buildRingOscillator(spice::Circuit& ckt,
                                        const RingOscillatorSpec& spec);

/// Result of a free-running frequency measurement.
struct RingMeasurement {
  double frequency = 0.0;      ///< fundamental [Hz]; 0 when no oscillation
  double peakToPeak = 0.0;     ///< steady-state output swing [V]
  bool oscillating = false;
};

/// Builds and transient-simulates the oscillator, measuring the
/// free-running frequency from rising zero crossings of the output.
/// `settle` and `observe` are expressed in estimated periods
/// (estimate: 8 gate delays of ~0.6/fT each... practically, the simulation
/// window is `windowNs` nanoseconds with `stepPs` picosecond step cap).
/// `opts` reaches the internal Analyzer (the runner's retry ladder relies
/// on this); `statsOut`, when non-null, receives the solver counters of
/// the measurement for per-job manifests.
RingMeasurement measureRingFrequency(const RingOscillatorSpec& spec,
                                     double windowNs = 8.0,
                                     double stepPs = 3.0,
                                     spice::AnalysisOptions opts = {},
                                     spice::AnalyzerStats* statsOut = nullptr);

}  // namespace ahfic::bjtgen
