#pragma once
// Minimal dependency-free HTTP/1.1 message layer for ahficd.
//
// Parsing is pure — bytes in, struct out — so it unit-tests without a
// socket; the server feeds the accumulated receive buffer back in after
// every read until the parser reports kDone or kError. Deliberately
// small surface:
//
//  * request line + headers + Content-Length body, CRLF or bare LF;
//  * Transfer-Encoding (chunked) is rejected cleanly with 501 — job
//    submissions are small JSON documents, never streamed;
//  * oversized bodies are rejected with 413 *before* the body is read,
//    from the declared Content-Length;
//  * header block and header count are capped (431) so a hostile peer
//    cannot balloon the buffer.
//
// Responses always carry Content-Length and Connection: close — one
// request per connection keeps the connection-handling state machine
// trivial, which is the right trade for a job-submission API whose
// requests each cost milliseconds to seconds of solver time.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace ahfic::serve {

struct HttpRequest {
  std::string method;   ///< as sent, upper-case expected ("GET", "POST")
  std::string target;   ///< the raw request target ("/v1/jobs?x=1")
  std::string path;     ///< target up to '?' (raw; router decodes params)
  std::string query;    ///< after '?' (raw; empty when absent)
  std::string version;  ///< "HTTP/1.1"
  /// Header names lower-cased, values trimmed, in arrival order.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Correlation id, filled by the server before dispatch: the client's
  /// X-Ahfic-Request-Id when one was sent, else freshly generated. It is
  /// echoed on the response and propagated through job/solver layers.
  std::string requestId;

  /// First header with lower-case name `nameLower`, or nullptr.
  const std::string* header(const std::string& nameLower) const;
};

struct HttpResponse {
  int status = 200;
  std::string contentType = "application/json";
  std::string body;
  /// Extra headers appended verbatim (e.g. {"Allow", "GET"}).
  std::vector<std::pair<std::string, std::string>> extraHeaders;

  static HttpResponse json(int status, std::string body);
  static HttpResponse html(int status, std::string body);
  /// {"error":{"status":...,"message":...}} with Content-Type json.
  static HttpResponse error(int status, const std::string& message);
};

/// Reason phrase for the handful of status codes the server emits;
/// "Unknown" otherwise.
const char* statusReason(int status);

/// The JSON error body used by every non-2xx machine response.
std::string jsonErrorBody(int status, const std::string& message);

enum class ParseState {
  kIncomplete,  ///< need more bytes
  kDone,        ///< one full request parsed
  kError,       ///< protocol violation; answer errorStatus and close
};

struct ParseLimits {
  size_t maxHeaderBytes = 16 * 1024;
  size_t maxHeaderCount = 64;
  size_t maxBodyBytes = 1024 * 1024;
};

struct ParseResult {
  ParseState state = ParseState::kIncomplete;
  int errorStatus = 0;       ///< HTTP status to answer with on kError
  std::string errorMessage;  ///< human-readable reason on kError
  size_t consumed = 0;       ///< bytes of `buffer` used on kDone
};

/// Attempts to parse one request from the front of `buffer`. On kDone,
/// `out` is fully populated and `consumed` says how many bytes belonged
/// to the request. On kIncomplete the caller should read more bytes and
/// retry with the grown buffer. On kError the connection should answer
/// `errorStatus` and close.
ParseResult parseRequest(const std::string& buffer, HttpRequest& out,
                         const ParseLimits& limits = {});

/// Serializes status line, headers and body (Connection: close).
std::string serializeResponse(const HttpResponse& resp);

/// Decodes %XX escapes (and rejects malformed ones by returning the
/// input unchanged for that escape). '+' is left alone: these are path
/// segments, not form data.
std::string percentDecode(const std::string& s);

}  // namespace ahfic::serve
