#pragma once
// Route table: (method, path pattern) -> handler.
//
// Patterns are '/'-separated literals with `<name>` parameter segments:
//   router.add("GET", "/v1/jobs/<id>", "jobs_status", handler);
// A parameter matches exactly one segment and is percent-decoded before
// the handler sees it. Dispatch picks the first route whose pattern
// matches; a path that matches some route under a different method
// yields 405 with an Allow header; anything else 404. Handler
// exceptions become 500 responses — a buggy handler must never take the
// daemon down.
//
// Every route carries a short `name` used as the metrics label
// (serve.endpoint.<name>.<statusclass>), so the per-endpoint counter
// set stays fixed-size no matter what clients request.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "serve/http.h"

namespace ahfic::serve {

/// Decoded `<name>` captures of the matched pattern.
struct RouteParams {
  std::map<std::string, std::string> values;

  /// Value for `name`, or the empty string.
  const std::string& get(const std::string& name) const;
};

using Handler =
    std::function<HttpResponse(const HttpRequest&, const RouteParams&)>;

class Router {
 public:
  /// Registers a route. `name` labels the endpoint in metrics.
  void add(std::string method, std::string pattern, std::string name,
           Handler handler);

  struct Dispatched {
    HttpResponse response;
    /// Metrics label of the matched route; "other" when nothing matched.
    std::string routeName = "other";
  };

  /// Matches and runs the handler (exceptions -> 500).
  Dispatched dispatch(const HttpRequest& req) const;

  /// Distinct route names plus "other", for metric pre-registration.
  std::vector<std::string> routeNames() const;

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  // literal or "<param>"
    std::string name;
    Handler handler;
  };

  static std::vector<std::string> splitPath(const std::string& path);
  static bool match(const Route& route,
                    const std::vector<std::string>& segments,
                    RouteParams& params);

  std::vector<Route> routes_;
};

}  // namespace ahfic::serve
