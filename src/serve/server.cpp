#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <random>
#include <system_error>

#include "obs/log.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/error.h"

namespace ahfic::serve {

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void setSocketTimeouts(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// send() the whole buffer; false on error/timeout. MSG_NOSIGNAL so a
/// peer that closed early yields EPIPE instead of killing the process.
bool sendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

void replyAndClose(int fd, const HttpResponse& resp) {
  sendAll(fd, serializeResponse(resp));
  ::close(fd);
}

/// "req-<8 hex process nonce>-<seq>": unique within and across daemon
/// restarts (the nonce is drawn once per process), cheap to generate on
/// the connection path, and greppable.
std::string makeRequestId() {
  static const unsigned long long nonce = [] {
    std::random_device rd;
    return (static_cast<unsigned long long>(rd()) << 32) ^ rd();
  }();
  static std::atomic<unsigned long long> seq{0};
  char buf[48];
  std::snprintf(buf, sizeof buf, "req-%08llx-%llu",
                nonce & 0xffffffffULL, seq.fetch_add(1) + 1);
  return buf;
}

}  // namespace

HttpServer::HttpServer(Router router, ServerOptions opts)
    : router_(std::move(router)),
      opts_(std::move(opts)),
      requests_(obs::counter("serve.requests")),
      requestMs_(obs::histogram("serve.request_ms")) {
  // Pre-register the fixed per-endpoint status-class counters so the
  // request path never takes the registry's registration mutex.
  for (const std::string& name : router_.routeNames()) {
    statusCounters_.emplace(
        name, std::array<obs::Counter, 3>{
                  obs::counter("serve.endpoint." + name + ".2xx"),
                  obs::counter("serve.endpoint." + name + ".4xx"),
                  obs::counter("serve.endpoint." + name + ".5xx")});
  }
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.load()) throw Error("HttpServer::start: already running");

  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0)
    throw Error("socket() failed: " +
                std::system_category().message(errno));

  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.bindAddress.c_str(), &addr.sin_addr) != 1) {
    ::close(listenFd_);
    listenFd_ = -1;
    throw Error("invalid bind address '" + opts_.bindAddress + "'");
  }
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string err = std::system_category().message(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw Error("bind(" + opts_.bindAddress + ":" +
                std::to_string(opts_.port) + ") failed: " + err);
  }
  if (::listen(listenFd_, 128) < 0) {
    const std::string err = std::system_category().message(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw Error("listen() failed: " + err);
  }

  socklen_t len = sizeof addr;
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false);
  running_.store(true);
  const int threads = opts_.connectionThreads < 1 ? 1
                                                  : opts_.connectionThreads;
  workers_.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w)
    workers_.emplace_back([this, w] {
      obs::profileSetThreadName(("http-" + std::to_string(w)).c_str());
      workerLoop();
    });
  acceptor_ = std::thread([this] {
    obs::profileSetThreadName("http-accept");
    acceptLoop();
  });
}

void HttpServer::stop() {
  if (!running_.load()) return;
  {
    // stopping_ is atomic, but a worker between its predicate check and
    // the block on connCv_ would miss a notify sent after a bare store;
    // setting the flag with connMu_ held closes that lost-wakeup window.
    util::MutexLock lock(&connMu_);
    stopping_.store(true);
  }

  // Unblock accept() by shutting the listening socket down.
  if (listenFd_ >= 0) {
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();

  connCv_.notifyAll();
  for (std::thread& t : workers_) t.join();
  workers_.clear();

  // Whatever is still queued never reached a worker: tell the peers.
  std::deque<int> leftovers;
  {
    util::MutexLock lock(&connMu_);
    leftovers.swap(pendingFds_);
  }
  for (int fd : leftovers)
    replyAndClose(fd, HttpResponse::error(503, "server shutting down"));

  running_.store(false);
}

void HttpServer::acceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listening socket is gone
    }
    setSocketTimeouts(fd, opts_.socketTimeoutSec);

    bool queued = false;
    {
      util::MutexLock lock(&connMu_);
      if (pendingFds_.size() <
          static_cast<size_t>(opts_.pendingConnections)) {
        pendingFds_.push_back(fd);
        queued = true;
      }
    }
    if (!queued) {
      // Shed load at the door; a full pending queue means the workers
      // are saturated and buffering more sockets only adds latency.
      replyAndClose(fd, HttpResponse::error(503, "connection queue full"));
      continue;
    }
    connCv_.notifyOne();
  }
}

void HttpServer::workerLoop() {
  while (true) {
    int fd = -1;
    {
      util::MutexLock lock(&connMu_);
      while (!stopping_.load() && pendingFds_.empty())
        connCv_.wait(&connMu_);
      if (stopping_.load()) return;
      fd = pendingFds_.front();
      pendingFds_.pop_front();
    }
    handleConnection(fd);
  }
}

void HttpServer::noteStatus(const std::string& routeName,
                            int status) const {
  auto it = statusCounters_.find(routeName);
  if (it == statusCounters_.end()) it = statusCounters_.find("other");
  if (it == statusCounters_.end()) return;
  if (status < 400)
    it->second[0].add();
  else if (status < 500)
    it->second[1].add();
  else
    it->second[2].add();
}

void HttpServer::handleConnection(int fd) {
  static const obs::LogSite sParseError =
      obs::logSite(obs::LogLevel::kWarn, "serve.parse_error", 10);
  static const obs::LogSite sTimeout =
      obs::logSite(obs::LogLevel::kWarn, "serve.recv_timeout", 10);
  static const obs::LogSite sRequest =
      obs::logSite(obs::LogLevel::kInfo, "serve.request");

  const auto t0 = std::chrono::steady_clock::now();
  requests_.add();

  std::string buffer;
  HttpRequest req;
  char chunk[8192];

  while (true) {
    ParseResult parsed = parseRequest(buffer, req, opts_.limits);
    if (parsed.state == ParseState::kError) {
      noteStatus("other", parsed.errorStatus);
      if (sParseError)
        sParseError.log("rejected unparseable request")
            .num("status", parsed.errorStatus)
            .str("reason", parsed.errorMessage);
      replyAndClose(fd, HttpResponse::error(parsed.errorStatus,
                                            parsed.errorMessage));
      requestMs_.observe(msSince(t0));
      return;
    }
    if (parsed.state == ParseState::kDone) break;

    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      // Timeout (half-open peer), reset, or orderly close before a full
      // request arrived. 408 is best-effort — the peer may be gone.
      if (sTimeout)
        sTimeout.log("connection closed before a full request")
            .num("bufferedBytes", static_cast<double>(buffer.size()));
      if (!buffer.empty())
        sendAll(fd, serializeResponse(HttpResponse::error(
                        408, "timed out waiting for a complete request")));
      ::close(fd);
      requestMs_.observe(msSince(t0));
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  // Correlation: honor a client-supplied id, otherwise mint one. The
  // thread context stamps every log line and span below this point; the
  // response always echoes the id so the client can grep it.
  const std::string* inbound = req.header("x-ahfic-request-id");
  req.requestId = (inbound != nullptr && !inbound->empty())
                      ? *inbound
                      : makeRequestId();
  obs::ScopedTraceContext traceCtx(req.requestId);

  obs::ScopedSpan span("serve.request", "serve");
  span.annotate("request_id", req.requestId);

  Router::Dispatched d = router_.dispatch(req);
  d.response.extraHeaders.emplace_back("X-Ahfic-Request-Id",
                                       req.requestId);
  noteStatus(d.routeName, d.response.status);
  replyAndClose(fd, d.response);
  const double ms = msSince(t0);
  requestMs_.observe(ms);
  if (sRequest)
    sRequest.log("request served")
        .str("method", req.method)
        .str("path", req.path)
        .str("route", d.routeName)
        .num("status", d.response.status)
        .num("ms", ms);
}

}  // namespace ahfic::serve
