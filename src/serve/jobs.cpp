#include "serve/jobs.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "bjtgen/montecarlo.h"
#include "bjtgen/process.h"
#include "lint/netlist.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "runner/workloads.h"
#include "serve/http.h"
#include "spice/rundeck.h"
#include "util/error.h"

namespace ahfic::serve {

namespace rn = ahfic::runner;
namespace sp = ahfic::spice;
namespace bg = ahfic::bjtgen;

namespace {

struct ServiceMetrics {
  obs::Counter submitted = obs::counter("serve.jobs_submitted");
  obs::Counter rejectedLint = obs::counter("serve.jobs_rejected_lint");
  obs::Counter overflow = obs::counter("serve.jobs_overflow");
  obs::Counter completed = obs::counter("serve.jobs_completed");
  obs::Counter preflightSkipped =
      obs::counter("serve.jobs_preflight_skipped");
  obs::Gauge queueDepth = obs::gauge("serve.queue_depth");
  /// The runner's own queue gauge doubles as the admission-queue depth:
  /// serve jobs run as single-job batches, so the engine-side gauge
  /// would otherwise sit at zero and dashboards built on it would go
  /// blind to daemon backlog.
  obs::Gauge runnerQueueDepth = obs::gauge("runner.queue_depth");
  obs::Histogram queueWaitMs = obs::histogram("serve.queue_wait_ms");
  obs::Histogram jobWallMs = obs::histogram("serve.job_wall_ms");
};

const ServiceMetrics& serviceMetrics() {
  static const ServiceMetrics m;
  return m;
}

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string hexHash(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

util::JsonValue metricsToJson(const rn::JobResult& result) {
  util::JsonValue m = util::JsonValue::object();
  for (const auto& [name, value] : result.metrics) m.set(name, value);
  return m;
}

/// Merges one runner outcome into a per-job JSON record.
util::JsonValue outcomeToJson(const rn::JobOutcome& out) {
  util::JsonValue j = util::JsonValue::object();
  j.set("key", out.record.key);
  j.set("status", rn::jobStatusName(out.record.status));
  j.set("cacheHit", out.record.cacheHit);
  j.set("rungName", out.record.rungName);
  j.set("attempts", out.record.attempts);
  if (!out.record.error.empty()) j.set("error", out.record.error);
  if (out.record.diags.isArray()) j.set("diags", out.record.diags);
  j.set("metrics", metricsToJson(out.result));
  return j;
}

}  // namespace

JobService::JobService(rn::Session& session, JobServiceOptions opts)
    : session_(session), opts_(opts) {
  if (opts_.workers < 0)
    throw Error("JobService: workers must be >= 0");
  if (opts_.queueDepth < 1)
    throw Error("JobService: queueDepth must be >= 1");
  workers_.reserve(static_cast<size_t>(opts_.workers));
  for (int w = 0; w < opts_.workers; ++w)
    workers_.emplace_back([this, w] {
      obs::profileSetThreadName(("jobsvc-" + std::to_string(w)).c_str());
      workerLoop();
    });
}

JobService::~JobService() { stop(false); }

void JobService::setQueueGauges(size_t depth) const {
  const ServiceMetrics& m = serviceMetrics();
  m.queueDepth.set(static_cast<double>(depth));
  m.runnerQueueDepth.set(static_cast<double>(depth));
}

SubmitOutcome JobService::submit(const SubmitRequest& request) {
  const ServiceMetrics& m = serviceMetrics();
  SubmitOutcome out;

  const bool isDeck = !request.deck.empty();
  const bool isWorkload = !request.workload.empty();
  if (isDeck == isWorkload) {
    out.status = 400;
    out.body = util::parseJson(jsonErrorBody(
        400, "submission needs exactly one of \"deck\" or \"workload\""));
    return out;
  }
  if (isWorkload && request.workload != "mc-ft" &&
      request.workload != "mc-ft-batch" && request.workload != "corner-ft") {
    out.status = 400;
    out.body = util::parseJson(jsonErrorBody(
        400, "unknown workload '" + request.workload +
                 "' (known: mc-ft, mc-ft-batch, corner-ft)"));
    return out;
  }

  static const obs::LogSite sRejected =
      obs::logSite(obs::LogLevel::kInfo, "serve.job_rejected_lint");
  static const obs::LogSite sOverflow =
      obs::logSite(obs::LogLevel::kWarn, "serve.job_overflow", 10);
  static const obs::LogSite sAdmitted =
      obs::logSite(obs::LogLevel::kInfo, "serve.job_admitted");

  // Admission lint gate. Rejections answer with the structured
  // "ahfic-lint-v1" report itself, so the client sees codes, lines and
  // objects — not a prose digest.
  if (isDeck && request.preflight) {
    const lint::LintReport report = lint::lintDeckText(request.deck);
    if (report.hasErrors()) {
      m.rejectedLint.add();
      if (sRejected)
        sRejected.log("submission rejected by lint gate")
            .num("deckBytes", static_cast<double>(request.deck.size()));
      out.status = 422;
      out.body = report.toJson();
      return out;
    }
  } else if (isDeck) {
    m.preflightSkipped.add();
  }

  util::MutexLock lock(&mu_);
  if (!accepting_) {
    out.status = 503;
    out.body =
        util::parseJson(jsonErrorBody(503, "daemon is shutting down"));
    return out;
  }
  if (queue_.size() >= static_cast<size_t>(opts_.queueDepth)) {
    m.overflow.add();
    if (sOverflow)
      sOverflow.log("submission shed: admission queue full")
          .num("queued", static_cast<double>(queue_.size()));
    out.status = 429;
    out.body = util::parseJson(jsonErrorBody(
        429, "admission queue full (" + std::to_string(queue_.size()) +
                 " queued); retry later"));
    return out;
  }

  Entry e;
  e.id = "job-" + std::to_string(nextId_++);
  e.requestId = request.requestId;
  e.label = request.label;
  e.kind = isDeck ? "deck" : "workload";
  e.deck = request.deck;
  e.workload = request.workload;
  e.params = request.params;
  e.submitted = std::chrono::steady_clock::now();
  const std::string id = e.id;
  entries_[id] = std::move(e);
  queue_.push_back(id);
  setQueueGauges(queue_.size());
  m.submitted.add();
  workCv_.notifyOne();
  if (sAdmitted)
    sAdmitted.log("job admitted")
        .str("job", id)
        .str("kind", entries_[id].kind)
        .num("queued", static_cast<double>(queue_.size()));

  out.status = 202;
  out.body = envelope(entries_[id]);
  return out;
}

JobService::StatusOutcome JobService::status(const std::string& id) const {
  util::MutexLock lock(&mu_);
  StatusOutcome out;
  auto it = entries_.find(id);
  if (it == entries_.end()) return out;
  out.found = true;
  out.body = envelope(it->second);
  return out;
}

util::JsonValue JobService::envelope(const Entry& e) const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "ahfic-job-v1");
  doc.set("id", e.id);
  if (!e.requestId.empty()) doc.set("requestId", e.requestId);
  if (!e.label.empty()) doc.set("label", e.label);
  doc.set("kind", e.kind);
  if (!e.workload.empty()) doc.set("workload", e.workload);
  switch (e.state) {
    case State::kQueued: doc.set("state", "queued"); break;
    case State::kRunning: doc.set("state", "running"); break;
    case State::kDone: doc.set("state", "done"); break;
  }
  if (e.state != State::kQueued) doc.set("queueMs", e.queueMs);
  if (e.state == State::kDone) {
    doc.set("wallMs", e.wallMs);
    // The execution result: status/cacheHit/listing/metrics/... for
    // decks, status/jobs for workloads.
    for (const std::string& key : e.result.keys())
      doc.set(key, e.result.get(key));
  }
  return doc;
}

void JobService::workerLoop() {
  while (true) {
    Entry snapshot;
    {
      util::MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) workCv_.wait(&mu_);
      // stop(drain) only raises stopping_ once the queue is empty (or
      // the drain timed out, abandoning what is left) — so exit trumps
      // a non-empty queue here.
      if (stopping_) return;
      if (queue_.empty()) continue;
      const std::string id = queue_.front();
      queue_.pop_front();
      setQueueGauges(queue_.size());
      Entry& e = entries_[id];
      e.state = State::kRunning;
      e.queueMs = msSince(e.submitted);
      serviceMetrics().queueWaitMs.observe(e.queueMs);
      ++running_;
      snapshot = e;  // copy; execution must not hold the lock
    }

    static const obs::LogSite sStart =
        obs::logSite(obs::LogLevel::kDebug, "serve.job_start");
    static const obs::LogSite sDone =
        obs::logSite(obs::LogLevel::kInfo, "serve.job_done");
    static const obs::LogSite sFailed =
        obs::logSite(obs::LogLevel::kError, "serve.job_failed");

    // Re-establish the submitting request's correlation on this worker
    // thread: every log line and span below carries both ids.
    obs::ScopedTraceContext traceCtx(snapshot.requestId, snapshot.id);

    const std::string doneId = snapshot.id;
    if (sStart)
      sStart.log("job execution starting")
          .str("kind", snapshot.kind)
          .num("queueMs", snapshot.queueMs);
    util::JsonValue result;
    double wallMs = 0.0;
    bool failed = false;
    try {
      execute(std::move(snapshot), result, wallMs);
    } catch (const std::exception& ex) {
      failed = true;
      if (sFailed)
        sFailed.log("job execution failed").str("error", ex.what());
      result = util::JsonValue::object();
      result.set("status", "failed");
      result.set("error", std::string("job execution failed: ") + ex.what());
    }
    if (!failed && sDone)
      sDone.log("job done")
          .str("status", result.has("status")
                             ? result.get("status").asString()
                             : std::string("ok"))
          .num("wallMs", wallMs);

    {
      util::MutexLock lock(&mu_);
      auto it = entries_.find(doneId);
      if (it != entries_.end()) {
        it->second.state = State::kDone;
        it->second.result = std::move(result);
        it->second.wallMs = wallMs;
        doneOrder_.push_back(it->first);
        trimDoneLocked();
      }
      --running_;
      serviceMetrics().completed.add();
      serviceMetrics().jobWallMs.observe(wallMs);
      drainCv_.notifyAll();
    }
  }
}

void JobService::execute(Entry snapshot, util::JsonValue& result,
                         double& wallMs) {
  const auto t0 = std::chrono::steady_clock::now();
  result = util::JsonValue::object();

  std::vector<rn::Job> jobs;
  if (snapshot.kind == "deck") {
    const std::string deckText = snapshot.deck;
    const std::string key = "deck/" + hexHash(rn::stableKeyHash(deckText));
    rn::Session& session = session_;
    rn::Job job;
    job.key = key;
    job.run = [deckText, key, &session](rn::JobContext& ctx) {
      std::ostringstream listing;
      auto deck = sp::parseDeck(deckText);
      sp::RunDeckOptions rdOpts;
      rdOpts.analysis = ctx.options;
      sp::runDeck(deck, listing, rdOpts);
      // The listing is text, not a metric: it lives in the session's
      // warm text store under the same key, so a later cache hit can
      // reproduce the full response bit-for-bit.
      std::string text = listing.str();
      rn::JobResult r;
      r.set("listing_bytes", static_cast<double>(text.size()));
      session.storeText(key, std::move(text));
      return r;
    };
    jobs.push_back(std::move(job));
  } else if (snapshot.workload == "mc-ft") {
    const auto& p = snapshot.params;
    const int dies =
        p.has("dies") ? static_cast<int>(p.get("dies").asNumber()) : 16;
    const std::string shape =
        p.has("shape") ? p.get("shape").asString() : "N1.2-12D";
    const double ic = p.has("ic") ? p.get("ic").asNumber() : 3e-3;
    char prefix[96];
    std::snprintf(prefix, sizeof prefix, "serve/mc-ft/%s@%g",
                  shape.c_str(), ic);
    jobs = rn::monteCarloFtJobs(bg::defaultTechnology(),
                                bg::ProcessVariation{}, dies, shape, ic,
                                prefix);
  } else if (snapshot.workload == "mc-ft-batch") {
    const auto& p = snapshot.params;
    const int dies =
        p.has("dies") ? static_cast<int>(p.get("dies").asNumber()) : 16;
    const std::string shape =
        p.has("shape") ? p.get("shape").asString() : "N1.2-12D";
    const double ic = p.has("ic") ? p.get("ic").asNumber() : 3e-3;
    // Block size: explicit "batch" param, else the session-wide knob,
    // else a whole-request block.
    int batch = p.has("batch") ? static_cast<int>(p.get("batch").asNumber())
                               : session_.options().mcBatchSize;
    if (batch <= 0) batch = dies;
    char prefix[96];
    std::snprintf(prefix, sizeof prefix, "serve/mc-ft-batch/%s@%g",
                  shape.c_str(), ic);
    jobs = rn::monteCarloFtBatchJobs(bg::defaultTechnology(),
                                     bg::ProcessVariation{}, dies, shape, ic,
                                     batch, session_.options().baseSeed,
                                     prefix);
  } else if (snapshot.workload == "corner-ft") {
    const auto& p = snapshot.params;
    const std::string shape =
        p.has("shape") ? p.get("shape").asString() : "N1.2-12D";
    const double ic = p.has("ic") ? p.get("ic").asNumber() : 3e-3;
    char prefix[96];
    std::snprintf(prefix, sizeof prefix, "serve/corner-ft/%s@%g",
                  shape.c_str(), ic);
    jobs = rn::cornerFtJobs(bg::defaultTechnology(), bg::ProcessVariation{},
                            shape, ic, 3.0, prefix);
  } else {
    throw Error("unknown workload '" + snapshot.workload + "'");
  }

  // Propagate the request correlation id into the runner: it rides the
  // Job into the engine's worker threads (thread-local context cannot
  // cross that pool) and from there into AnalysisOptions.
  for (rn::Job& j : jobs) j.traceId = snapshot.requestId;

  const rn::BatchResult batch = session_.run(jobs);
  wallMs = msSince(t0);

  if (snapshot.kind == "deck") {
    const rn::JobOutcome& out = batch.outcomes.at(0);
    result.set("key", out.record.key);
    result.set("status", rn::jobStatusName(out.record.status));
    result.set("cacheHit", out.record.cacheHit);
    result.set("rungName", out.record.rungName);
    result.set("attempts", out.record.attempts);
    if (!out.record.error.empty()) result.set("error", out.record.error);
    if (out.record.diags.isArray()) result.set("diags", out.record.diags);
    result.set("metrics", metricsToJson(out.result));
    if (out.ok()) {
      if (auto listing = session_.fetchText(out.record.key))
        result.set("listing", *listing);
    }
  } else {
    int okCount = 0, cacheHits = 0;
    util::JsonValue arr = util::JsonValue::array();
    for (const rn::JobOutcome& out : batch.outcomes) {
      if (out.ok()) ++okCount;
      if (out.record.cacheHit) ++cacheHits;
      arr.push(outcomeToJson(out));
    }
    result.set("status", okCount == static_cast<int>(batch.outcomes.size())
                             ? "ok"
                             : "failed");
    result.set("jobsOk", okCount);
    result.set("cacheHits", cacheHits);
    result.set("jobs", std::move(arr));
  }
}

void JobService::trimDoneLocked() {
  while (doneOrder_.size() > opts_.maxRetained) {
    const std::string id = doneOrder_.front();
    doneOrder_.pop_front();
    auto it = entries_.find(id);
    if (it != entries_.end() && it->second.state == State::kDone)
      entries_.erase(it);
  }
}

bool JobService::stop(bool drain, std::chrono::milliseconds timeout) {
  bool drained = true;
  {
    util::MutexLock lock(&mu_);
    if (stopped_) return true;
    accepting_ = false;
    if (drain && !workers_.empty()) {
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      while (!(queue_.empty() && running_ == 0)) {
        if (drainCv_.waitUntil(&mu_, deadline) == std::cv_status::timeout)
          break;
      }
      drained = queue_.empty() && running_ == 0;
    }
    stopping_ = true;
    workCv_.notifyAll();
  }
  for (std::thread& t : workers_) t.join();
  {
    util::MutexLock lock(&mu_);
    workers_.clear();
    stopped_ = true;
  }
  return drained;
}

size_t JobService::queuedCount() const {
  util::MutexLock lock(&mu_);
  return queue_.size();
}

int JobService::runningCount() const {
  util::MutexLock lock(&mu_);
  return running_;
}

bool JobService::accepting() const {
  util::MutexLock lock(&mu_);
  return accepting_;
}

}  // namespace ahfic::serve
