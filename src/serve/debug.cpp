#include "serve/debug.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "celldb/html.h"
#include "obs/prof.h"

namespace ahfic::serve {

namespace {

using obs::MetricsHistory;
using obs::MetricsSnapshot;

std::string fmt(double v) {
  char buf[40];
  if (std::abs(v) >= 1000.0 ||
      (v == static_cast<long long>(v) && std::abs(v) < 1e15))
    std::snprintf(buf, sizeof buf, "%.0f", v);
  else
    std::snprintf(buf, sizeof buf, "%.3g", v);
  return buf;
}

/// One inline SVG sparkline: the series as a polyline over a fixed
/// 260x48 viewport, min..max autoscaled (flat series render mid-height),
/// with a dot on the latest point.
std::string sparkline(const std::vector<double>& ys) {
  const int w = 260, h = 48, pad = 3;
  std::string svg = "<svg class=\"spark\" width=\"" + std::to_string(w) +
                    "\" height=\"" + std::to_string(h) +
                    "\" viewBox=\"0 0 " + std::to_string(w) + " " +
                    std::to_string(h) + "\">";
  if (ys.size() >= 2) {
    double lo = ys[0], hi = ys[0];
    for (double y : ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
    const double span = hi - lo;
    auto px = [&](size_t i) {
      return pad + (w - 2.0 * pad) * static_cast<double>(i) /
                       static_cast<double>(ys.size() - 1);
    };
    auto py = [&](double y) {
      if (span <= 0.0) return h / 2.0;
      return h - pad - (h - 2.0 * pad) * (y - lo) / span;
    };
    std::string points;
    char buf[96];
    for (size_t i = 0; i < ys.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%.1f,%.1f ", px(i), py(ys[i]));
      points += buf;
    }
    svg += "<polyline fill=\"none\" stroke=\"#2b6cb0\" stroke-width=\"1.5\" "
           "points=\"" + points + "\"/>";
    std::snprintf(buf, sizeof buf,
                  "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" "
                  "fill=\"#2b6cb0\"/>",
                  px(ys.size() - 1), py(ys.back()));
    svg += buf;
  } else {
    svg += "<text x=\"8\" y=\"28\" fill=\"#999\" font-size=\"11\">"
           "collecting…</text>";
  }
  svg += "</svg>";
  return svg;
}

/// One dashboard card: title, latest value, sparkline.
void card(std::string& out, const std::string& title,
          const std::vector<double>& ys, const std::string& unit) {
  out += "<div class=\"card\"><div class=\"t\">";
  out += celldb::escapeHtml(title);
  out += "</div><div class=\"v\">";
  out += ys.empty() ? std::string("&ndash;") : fmt(ys.back());
  if (!unit.empty()) out += " <span class=\"u\">" + unit + "</span>";
  out += "</div>";
  out += sparkline(ys);
  out += "</div>\n";
}

double gaugeValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.gauges)
    if (n == name) return v;
  return 0.0;
}

std::vector<double> gaugeSeries(
    const std::vector<MetricsHistory::Sample>& samples,
    const std::string& name) {
  std::vector<double> ys;
  ys.reserve(samples.size());
  for (const auto& s : samples) ys.push_back(gaugeValue(s.snap, name));
  return ys;
}

/// Counter increments per second between consecutive samples (one entry
/// fewer than the sample count).
std::vector<double> rateSeries(
    const std::vector<MetricsHistory::Sample>& samples,
    const std::string& name) {
  std::vector<double> ys;
  for (size_t i = 1; i < samples.size(); ++i) {
    const double dt = samples[i].unixSec - samples[i - 1].unixSec;
    const double dv = static_cast<double>(
        samples[i].snap.counterValue(name) -
        samples[i - 1].snap.counterValue(name));
    ys.push_back(dt > 0.0 ? dv / dt : 0.0);
  }
  return ys;
}

/// Cache hit percentage over each inter-sample window; carries the
/// previous value through windows with no cache traffic.
std::vector<double> hitRateSeries(
    const std::vector<MetricsHistory::Sample>& samples) {
  std::vector<double> ys;
  double last = 0.0;
  for (size_t i = 1; i < samples.size(); ++i) {
    const double hits = static_cast<double>(
        samples[i].snap.counterValue("runner.cache_hits") -
        samples[i - 1].snap.counterValue("runner.cache_hits"));
    const double misses = static_cast<double>(
        samples[i].snap.counterValue("runner.cache_misses") -
        samples[i - 1].snap.counterValue("runner.cache_misses"));
    if (hits + misses > 0.0) last = 100.0 * hits / (hits + misses);
    ys.push_back(last);
  }
  return ys;
}

/// Share of Newton solve wall time spent evaluating device models, per
/// inter-sample window (histogram *sum* deltas); carries the previous
/// value through idle windows.
std::vector<double> deviceEvalShareSeries(
    const std::vector<MetricsHistory::Sample>& samples) {
  std::vector<double> ys;
  double last = 0.0;
  auto sum = [](const MetricsSnapshot& snap, const char* name) {
    const obs::HistogramSnapshot* h = snap.findHistogram(name);
    return h != nullptr ? h->sum : 0.0;
  };
  for (size_t i = 1; i < samples.size(); ++i) {
    const double dDev =
        sum(samples[i].snap, "spice.newton.device_eval_ns") -
        sum(samples[i - 1].snap, "spice.newton.device_eval_ns");
    const double dWall = sum(samples[i].snap, "spice.newton.wall_ns") -
                         sum(samples[i - 1].snap, "spice.newton.wall_ns");
    if (dWall > 0.0) last = 100.0 * dDev / dWall;
    ys.push_back(last);
  }
  return ys;
}

std::vector<double> quantileSeries(
    const std::vector<MetricsHistory::Sample>& samples,
    const std::string& name, double q) {
  std::vector<double> ys;
  ys.reserve(samples.size());
  for (const auto& s : samples) {
    const obs::HistogramSnapshot* h = s.snap.findHistogram(name);
    ys.push_back(h != nullptr ? h->quantileInterpolated(q) : 0.0);
  }
  return ys;
}

}  // namespace

std::string debugDashboardHtml(const MetricsHistory& history,
                               double windowSec) {
  const std::vector<MetricsHistory::Sample> samples =
      history.window(windowSec);

  std::string out;
  out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  out += "<meta http-equiv=\"refresh\" content=\"5\">\n";
  out += "<title>ahficd /debug</title>\n<style>\n"
         "body{font-family:system-ui,sans-serif;margin:1.5em;"
         "background:#fafafa;color:#222}\n"
         "h1{font-size:1.3em} .meta{color:#666;font-size:0.85em}\n"
         ".grid{display:flex;flex-wrap:wrap;gap:12px;margin-top:1em}\n"
         ".card{background:#fff;border:1px solid #ddd;border-radius:6px;"
         "padding:10px 12px;width:280px}\n"
         ".card .t{font-size:0.8em;color:#555;text-transform:uppercase;"
         "letter-spacing:0.04em}\n"
         ".card .v{font-size:1.5em;margin:2px 0 4px}\n"
         ".card .u{font-size:0.55em;color:#888}\n"
         "</style></head><body>\n";
  out += "<h1>ahficd live dashboard</h1>\n";
  out += "<div class=\"meta\">" + std::to_string(samples.size()) +
         " samples &middot; interval " + fmt(history.intervalSec()) +
         " s &middot; capacity " + std::to_string(history.capacity()) +
         " &middot; auto-refresh 5 s &middot; <a href=\"/v1/metrics\">"
         "metrics</a> &middot; <a href=\"/v1/metrics/history\">history"
         "</a> &middot; <a href=\"/celldb\">celldb</a> &middot; "
         "<a href=\"/v1/profile?seconds=5\">profile 5 s</a>";
  const obs::LatestProfileInfo prof = obs::latestProfileInfo();
  if (prof.present) {
    out += " &middot; <a href=\"/v1/profile/latest\">latest profile</a> (" +
           celldb::escapeHtml(prof.timestamp) + ", " +
           std::to_string(prof.samples) + " samples)";
  }
  out += "</div>\n";

  out += "<div class=\"grid\">\n";
  card(out, "queue depth", gaugeSeries(samples, "serve.queue_depth"),
       "jobs");
  card(out, "job throughput", rateSeries(samples, "serve.jobs_completed"),
       "jobs/s");
  card(out, "cache hit rate", hitRateSeries(samples), "%");
  card(out, "request rate", rateSeries(samples, "serve.requests"),
       "req/s");
  card(out, "request latency p95",
       quantileSeries(samples, "serve.request_ms", 0.95), "ms");
  card(out, "job wall p95",
       quantileSeries(samples, "serve.job_wall_ms", 0.95), "ms");
  card(out, "newton iters p50",
       quantileSeries(samples, "spice.newton.iterations", 0.50), "iters");
  card(out, "newton iters p99",
       quantileSeries(samples, "spice.newton.iterations", 0.99), "iters");
  card(out, "device eval share", deviceEvalShareSeries(samples), "%");
  out += "</div>\n</body></html>\n";
  return out;
}

}  // namespace ahfic::serve
