#pragma once
// The ahficd JSON/HTML API, as one Router:
//
//   GET  /healthz                      liveness + queue/cache gauges
//   GET  /v1/metrics                   live "ahfic-metrics-v1" snapshot
//                                      (?format=prometheus for text
//                                      exposition)
//   GET  /v1/metrics/history           "ahfic-metrics-history-v1" ring
//                                      (?window=SECONDS to trim)
//   GET  /debug                        live HTML dashboard (sparklines
//                                      over the history ring)
//   GET  /v1/profile                   sample the live process for
//                                      ?seconds=N (default 2, max 30)
//                                      and return the ahfic-profile-v1
//                                      capture (?format=collapsed for
//                                      flamegraph.pl text); 409 while
//                                      another capture runs
//   GET  /v1/profile/latest            most recent capture (404 when
//                                      none yet)
//   POST /v1/jobs                      submit {"deck"|"workload", ...}
//   GET  /v1/jobs/<id>                 "ahfic-job-v1" envelope
//   GET  /celldb                       live library index (HTML)
//   GET  /celldb/cell/<library>/<name> one cell page (HTML)
//   GET  /celldb/cell/<name>           ditto when the name is unique
//   POST /v1/celldb/cells              register a cell (JSON fields as
//                                      in celldb::Cell; full content
//                                      validation applies)
//
// The builder borrows everything it serves — the JobService, the
// CellDatabase and its guarding mutex stay owned by the caller
// (examples/ahficd.cpp, tests) and must outlive the Router.

#include "celldb/database.h"
#include "obs/history.h"
#include "serve/jobs.h"
#include "serve/router.h"
#include "util/mutex.h"

namespace ahfic::serve {

struct ApiContext {
  JobService* jobs = nullptr;
  /// Live cell database; registration and page rendering serialize on
  /// `dbMutex` (the database itself is not thread-safe).
  celldb::CellDatabase* db AHFIC_PT_GUARDED_BY(dbMutex) = nullptr;
  util::Mutex* dbMutex = nullptr;
  /// Metrics time-series ring (optional; /v1/metrics/history and /debug
  /// answer 503 when absent).
  obs::MetricsHistory* history = nullptr;
};

/// Builds the full route table over borrowed services.
Router buildApiRouter(const ApiContext& ctx);

}  // namespace ahfic::serve
