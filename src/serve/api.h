#pragma once
// The ahficd JSON/HTML API, as one Router:
//
//   GET  /healthz                      liveness + queue/cache gauges
//   GET  /v1/metrics                   live "ahfic-metrics-v1" snapshot
//   POST /v1/jobs                      submit {"deck"|"workload", ...}
//   GET  /v1/jobs/<id>                 "ahfic-job-v1" envelope
//   GET  /celldb                       live library index (HTML)
//   GET  /celldb/cell/<library>/<name> one cell page (HTML)
//   GET  /celldb/cell/<name>           ditto when the name is unique
//   POST /v1/celldb/cells              register a cell (JSON fields as
//                                      in celldb::Cell; full content
//                                      validation applies)
//
// The builder borrows everything it serves — the JobService, the
// CellDatabase and its guarding mutex stay owned by the caller
// (examples/ahficd.cpp, tests) and must outlive the Router.

#include <mutex>

#include "celldb/database.h"
#include "serve/jobs.h"
#include "serve/router.h"

namespace ahfic::serve {

struct ApiContext {
  JobService* jobs = nullptr;
  /// Live cell database; registration and page rendering serialize on
  /// `dbMutex` (the database itself is not thread-safe).
  celldb::CellDatabase* db = nullptr;
  std::mutex* dbMutex = nullptr;
};

/// Builds the full route table over borrowed services.
Router buildApiRouter(const ApiContext& ctx);

}  // namespace ahfic::serve
