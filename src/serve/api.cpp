#include "serve/api.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <utility>

#include "celldb/html.h"
#include "obs/bench.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "serve/debug.h"
#include "util/error.h"

namespace ahfic::serve {

namespace cd = ahfic::celldb;

namespace {

/// Value of `key` in the raw query string ("a=1&b=2"), percent-decoded;
/// empty when absent.
std::string queryParam(const HttpRequest& req, const std::string& key) {
  size_t pos = 0;
  while (pos < req.query.size()) {
    size_t end = req.query.find('&', pos);
    if (end == std::string::npos) end = req.query.size();
    const std::string pair = req.query.substr(pos, end - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key)
      return percentDecode(pair.substr(eq + 1));
    pos = end + 1;
  }
  return std::string();
}

/// Strict seconds parse for query params: the whole string must be one
/// finite non-negative number. Rejects what std::stod would silently
/// coerce — trailing garbage ("5abc"), "inf", "nan" — and negatives.
bool parseSecondsParam(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v) || v < 0.0) return false;
  out = v;
  return true;
}

/// Upper bound for on-demand profile captures: long enough for a real
/// investigation, short enough that a worker thread blocking for the
/// capture cannot be weaponized.
constexpr double kMaxProfileSeconds = 30.0;

/// Parses the submission body; throws ahfic::Error with a client-facing
/// message on schema problems (mapped to 400 by the caller).
SubmitRequest parseSubmitBody(const std::string& body) {
  const util::JsonValue doc = util::parseJson(body);  // ParseError -> 400
  if (!doc.isObject())
    throw Error("submission body must be a JSON object");
  SubmitRequest req;
  if (doc.has("deck")) req.deck = doc.get("deck").asString();
  if (doc.has("workload")) req.workload = doc.get("workload").asString();
  if (doc.has("params")) req.params = doc.get("params");
  if (doc.has("label")) req.label = doc.get("label").asString();
  if (doc.has("preflight")) req.preflight = doc.get("preflight").asBool();
  return req;
}

/// Builds a celldb::Cell from the registration JSON.
cd::Cell parseCellBody(const std::string& body) {
  const util::JsonValue doc = util::parseJson(body);
  if (!doc.isObject())
    throw Error("cell registration body must be a JSON object");
  cd::Cell cell;
  auto str = [&doc](const char* key) {
    return doc.has(key) ? doc.get(key).asString() : std::string();
  };
  cell.name = str("name");
  cell.library = str("library");
  cell.category1 = str("category1");
  cell.category2 = str("category2");
  cell.document = str("document");
  cell.schematic = str("schematic");
  cell.behavioral = str("behavioral");
  cell.symbol = str("symbol");
  cell.author = str("author");
  cell.registeredOn = str("registered");
  auto strings = [&doc](const char* key) {
    std::vector<std::string> out;
    if (!doc.has(key)) return out;
    const util::JsonValue& arr = doc.get(key);
    for (size_t i = 0; i < arr.size(); ++i)
      out.push_back(arr.at(i).asString());
    return out;
  };
  cell.ports = strings("ports");
  cell.keywords = strings("keywords");
  return cell;
}

HttpResponse cellPageResponse(const cd::Cell* cell) {
  if (cell == nullptr) return HttpResponse::error(404, "no such cell");
  cd::HtmlOptions opts;
  opts.liveLinks = true;
  return HttpResponse::html(200, cd::cellPageHtml(*cell, opts));
}

}  // namespace

Router buildApiRouter(const ApiContext& ctx) {
  Router router;

  router.add("GET", "/healthz", "healthz",
             [ctx](const HttpRequest&, const RouteParams&) {
               util::JsonValue doc = util::JsonValue::object();
               doc.set("status", "ok");
               doc.set("accepting", ctx.jobs->accepting());
               doc.set("queued", static_cast<double>(
                                     ctx.jobs->queuedCount()));
               doc.set("running", ctx.jobs->runningCount());
               return HttpResponse::json(200, doc.dump() + "\n");
             });

  router.add("GET", "/v1/metrics", "metrics",
             [](const HttpRequest& req, const RouteParams&) {
               const std::string format = queryParam(req, "format");
               if (format == "prometheus") {
                 HttpResponse resp;
                 resp.status = 200;
                 resp.contentType = "text/plain; version=0.0.4";
                 resp.body = obs::metrics().snapshot().toPrometheusText();
                 return resp;
               }
               if (!format.empty() && format != "json")
                 return HttpResponse::error(
                     400, "unknown format '" + format +
                              "' (known: json, prometheus)");
               return HttpResponse::json(
                   200, obs::metrics().snapshot().toJsonString() + "\n");
             });

  router.add("GET", "/v1/metrics/history", "metrics_history",
             [ctx](const HttpRequest& req, const RouteParams&) {
               if (ctx.history == nullptr)
                 return HttpResponse::error(
                     503, "metrics history is not enabled");
               double windowSec = 0.0;
               const std::string window = queryParam(req, "window");
               if (!window.empty() &&
                   !parseSecondsParam(window, windowSec))
                 return HttpResponse::error(
                     400, "bad window '" + window +
                              "' (want non-negative seconds)");
               return HttpResponse::json(
                   200, ctx.history->toJson(windowSec).dump(2) + "\n");
             });

  router.add("GET", "/debug", "debug",
             [ctx](const HttpRequest& req, const RouteParams&) {
               if (ctx.history == nullptr)
                 return HttpResponse::error(
                     503, "metrics history is not enabled");
               double windowSec = 0.0;
               const std::string window = queryParam(req, "window");
               if (!window.empty() &&
                   !parseSecondsParam(window, windowSec))
                 return HttpResponse::error(
                     400, "bad window '" + window +
                              "' (want non-negative seconds)");
               return HttpResponse::html(
                   200, debugDashboardHtml(*ctx.history, windowSec));
             });

  router.add("GET", "/v1/profile", "profile",
             [](const HttpRequest& req, const RouteParams&) {
               double seconds = 2.0;
               const std::string raw = queryParam(req, "seconds");
               if (!raw.empty() && !parseSecondsParam(raw, seconds))
                 return HttpResponse::error(
                     400, "bad seconds '" + raw + "' (want seconds)");
               if (seconds <= 0.0 || seconds > kMaxProfileSeconds)
                 return HttpResponse::error(
                     400, "seconds must be in (0, 30]");
               const std::string format = queryParam(req, "format");
               if (!format.empty() && format != "json" &&
                   format != "collapsed")
                 return HttpResponse::error(
                     400, "unknown format '" + format +
                              "' (known: json, collapsed)");
               // One capture at a time process-wide: a second request
               // (or a --profile flag) holds the slot -> 409, without
               // disturbing the running capture.
               if (!obs::startProfiling())
                 return HttpResponse::error(
                     409, "a profile capture is already running");
               // Bounded block on this worker thread; the capture
               // samples the whole process, including the other workers
               // actually doing the interesting work.
               std::this_thread::sleep_for(
                   std::chrono::duration<double>(seconds));
               const obs::ProfileReport report = obs::stopProfiling();
               if (format == "collapsed") {
                 HttpResponse resp;
                 resp.status = 200;
                 resp.contentType = "text/plain; charset=utf-8";
                 resp.body = report.collapsed();
                 return resp;
               }
               return HttpResponse::json(
                   200, obs::benchEnvelope("profile", report.toJson(),
                                           obs::benchTimestampUtc())
                                .dump(2) +
                            "\n");
             });

  router.add("GET", "/v1/profile/latest", "profile_latest",
             [](const HttpRequest&, const RouteParams&) {
               const std::string doc = obs::latestProfileJson();
               if (doc.empty())
                 return HttpResponse::error(
                     404, "no profile captured yet (GET /v1/profile)");
               return HttpResponse::json(200, doc);
             });

  router.add("POST", "/v1/jobs", "jobs_submit",
             [ctx](const HttpRequest& req, const RouteParams&) {
               SubmitRequest submit;
               try {
                 submit = parseSubmitBody(req.body);
               } catch (const Error& e) {
                 return HttpResponse::error(
                     400, std::string("bad submission: ") + e.what());
               }
               submit.requestId = req.requestId;
               const SubmitOutcome out = ctx.jobs->submit(submit);
               return HttpResponse::json(out.status,
                                         out.body.dump(2) + "\n");
             });

  router.add("GET", "/v1/jobs/<id>", "jobs_status",
             [ctx](const HttpRequest&, const RouteParams& params) {
               const auto out = ctx.jobs->status(params.get("id"));
               if (!out.found)
                 return HttpResponse::error(
                     404, "no job '" + params.get("id") +
                              "' (unknown id, or expired from retention)");
               return HttpResponse::json(200, out.body.dump(2) + "\n");
             });

  router.add("GET", "/celldb", "celldb_index",
             [ctx](const HttpRequest&, const RouteParams&) {
               cd::HtmlOptions opts;
               opts.liveLinks = true;
               util::MutexLock lock(ctx.dbMutex);
               return HttpResponse::html(
                   200, cd::libraryIndexHtml(*ctx.db, opts));
             });

  router.add("GET", "/celldb/cell/<library>/<name>", "celldb_cell",
             [ctx](const HttpRequest&, const RouteParams& params) {
               util::MutexLock lock(ctx.dbMutex);
               return cellPageResponse(ctx.db->find(params.get("library"),
                                                    params.get("name")));
             });

  router.add("GET", "/celldb/cell/<name>", "celldb_cell",
             [ctx](const HttpRequest&, const RouteParams& params) {
               util::MutexLock lock(ctx.dbMutex);
               const cd::Cell* found = nullptr;
               for (const std::string& lib : ctx.db->libraries()) {
                 const cd::Cell* c = ctx.db->find(lib, params.get("name"));
                 if (c == nullptr) continue;
                 if (found != nullptr)
                   return HttpResponse::error(
                       409, "cell name '" + params.get("name") +
                                "' is ambiguous; use "
                                "/celldb/cell/<library>/<name>");
                 found = c;
               }
               return cellPageResponse(found);
             });

  router.add("POST", "/v1/celldb/cells", "celldb_register",
             [ctx](const HttpRequest& req, const RouteParams&) {
               cd::Cell cell;
               try {
                 cell = parseCellBody(req.body);
               } catch (const Error& e) {
                 return HttpResponse::error(
                     400, std::string("bad cell document: ") + e.what());
               }
               util::MutexLock lock(ctx.dbMutex);
               if (ctx.db->find(cell.library, cell.name) != nullptr)
                 return HttpResponse::error(
                     409, "cell '" + cell.key() + "' already registered");
               try {
                 // Full content validation: schematic must parse as
                 // SPICE, behavioural view as AHDL.
                 ctx.db->registerCell(std::move(cell));
               } catch (const Error& e) {
                 return HttpResponse::error(422, e.what());
               }
               util::JsonValue doc = util::JsonValue::object();
               doc.set("registered", true);
               doc.set("cells", static_cast<double>(ctx.db->size()));
               return HttpResponse::json(201, doc.dump() + "\n");
             });

  return router;
}

}  // namespace ahfic::serve
