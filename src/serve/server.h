#pragma once
// Blocking-accept HTTP server over POSIX sockets: one acceptor thread
// feeding a bounded connection queue drained by a small pool of
// connection workers. No third-party dependencies.
//
// Per-connection protocol: read until one full request is parsed (the
// receive timeout bounds how long a half-open or trickling client can
// pin a worker), dispatch through the Router, write the response,
// close. One request per connection — see serve/http.h for why.
//
// Shutdown: stop() closes the listening socket (unblocking accept),
// wakes the workers, answers 503 to connections still queued, and
// joins everything. Callers drain the JobService first so in-flight
// simulations finish before the process exits (see examples/ahficd).
//
// Observability: every request increments serve.requests, times into
// serve.request_ms and counts into serve.endpoint.<route>.<class>
// (class in 2xx/4xx/5xx) — handles pre-registered per route name, so
// hot-path metric writes never touch the registry mutex.

#include <array>
#include <atomic>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/router.h"
#include "util/mutex.h"

namespace ahfic::serve {

struct ServerOptions {
  std::string bindAddress = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available from port() after
  /// start(), which is how tests avoid fixed-port collisions.
  int port = 0;
  int connectionThreads = 4;
  /// SO_RCVTIMEO/SO_SNDTIMEO on accepted sockets, so half-open peers
  /// time out instead of pinning a worker forever.
  int socketTimeoutSec = 10;
  /// Accepted connections waiting for a worker beyond this get 503.
  int pendingConnections = 64;
  ParseLimits limits;
};

class HttpServer {
 public:
  HttpServer(Router router, ServerOptions opts);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, spawns acceptor + workers. Throws ahfic::Error on
  /// socket/bind failure (e.g. port already in use).
  void start();

  /// Stops accepting, drains the connection queue with 503s, joins all
  /// threads. Idempotent; safe to call from a signal-wait thread.
  void stop();

  /// The actually-bound port (resolves port 0), valid after start().
  int port() const { return port_; }
  bool running() const { return running_.load(); }

 private:
  void acceptLoop();
  void workerLoop();
  void handleConnection(int fd);
  void noteStatus(const std::string& routeName, int status) const;

  Router router_;
  ServerOptions opts_;

  int listenFd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  util::Mutex connMu_;
  util::CondVar connCv_;
  std::deque<int> pendingFds_ AHFIC_GUARDED_BY(connMu_);

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // Pre-registered metric handles: route name -> {2xx, 4xx, 5xx}.
  obs::Counter requests_;
  obs::Histogram requestMs_;
  std::map<std::string, std::array<obs::Counter, 3>> statusCounters_;
};

}  // namespace ahfic::serve
