#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/json.h"

namespace ahfic::serve {

namespace {

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string trimCopy(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                   s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

ParseResult fail(int status, std::string message) {
  ParseResult r;
  r.state = ParseState::kError;
  r.errorStatus = status;
  r.errorMessage = std::move(message);
  return r;
}

int hexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& nameLower) const {
  for (const auto& [name, value] : headers)
    if (name == nameLower) return &value;
  return nullptr;
}

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.contentType = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::html(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.contentType = "text/html; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::error(int status, const std::string& message) {
  return json(status, jsonErrorBody(status, message));
}

const char* statusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string jsonErrorBody(int status, const std::string& message) {
  util::JsonValue err = util::JsonValue::object();
  err.set("status", status);
  err.set("reason", statusReason(status));
  err.set("message", message);
  util::JsonValue doc = util::JsonValue::object();
  doc.set("error", std::move(err));
  return doc.dump() + "\n";
}

std::string percentDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hexDigit(s[i + 1]);
      const int lo = hexDigit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

ParseResult parseRequest(const std::string& buffer, HttpRequest& out,
                         const ParseLimits& limits) {
  // Find the end of the header block: CRLFCRLF, tolerating bare LF.
  size_t headerEnd = std::string::npos;  // index one past the blank line
  for (size_t i = 0; i < buffer.size(); ++i) {
    if (buffer[i] != '\n') continue;
    // Line ending at i; blank line when the next line is empty.
    size_t next = i + 1;
    if (next < buffer.size() && buffer[next] == '\r') ++next;
    if (next < buffer.size() && buffer[next] == '\n') {
      headerEnd = next + 1;
      break;
    }
  }
  if (headerEnd == std::string::npos) {
    if (buffer.size() > limits.maxHeaderBytes)
      return fail(431, "header block exceeds " +
                           std::to_string(limits.maxHeaderBytes) + " bytes");
    return ParseResult{};  // incomplete
  }
  if (headerEnd > limits.maxHeaderBytes)
    return fail(431, "header block exceeds " +
                         std::to_string(limits.maxHeaderBytes) + " bytes");

  // Split the header block into lines.
  out = HttpRequest{};
  std::vector<std::string> lines;
  size_t lineStart = 0;
  while (lineStart < headerEnd) {
    size_t nl = buffer.find('\n', lineStart);
    if (nl == std::string::npos || nl >= headerEnd) break;
    std::string line = buffer.substr(lineStart, nl - lineStart);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    lineStart = nl + 1;
  }
  if (lines.empty() || lines[0].empty())
    return fail(400, "missing request line");

  // Request line: METHOD SP target SP HTTP/x.y
  {
    const std::string& rl = lines[0];
    const size_t sp1 = rl.find(' ');
    const size_t sp2 = rl.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1)
      return fail(400, "malformed request line '" + rl + "'");
    out.method = rl.substr(0, sp1);
    out.target = trimCopy(rl.substr(sp1 + 1, sp2 - sp1 - 1));
    out.version = rl.substr(sp2 + 1);
    if (out.method.empty() || out.target.empty() || out.target[0] != '/')
      return fail(400, "malformed request line '" + rl + "'");
    for (char c : out.method)
      if (!std::isupper(static_cast<unsigned char>(c)))
        return fail(400, "malformed method '" + out.method + "'");
    if (out.version.rfind("HTTP/1.", 0) != 0)
      return fail(400, "unsupported protocol '" + out.version + "'");
    // Path is kept raw (still percent-encoded): the router decodes each
    // matched segment, so an encoded '/' inside a parameter cannot
    // change the segmentation.
    const size_t q = out.target.find('?');
    out.path = out.target.substr(0, q);
    out.query = q == std::string::npos ? "" : out.target.substr(q + 1);
  }

  // Header fields.
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;  // the blank terminator line
    const size_t colon = lines[i].find(':');
    if (colon == std::string::npos || colon == 0)
      return fail(400, "malformed header line '" + lines[i] + "'");
    out.headers.emplace_back(toLower(trimCopy(lines[i].substr(0, colon))),
                             trimCopy(lines[i].substr(colon + 1)));
    if (out.headers.size() > limits.maxHeaderCount)
      return fail(431, "more than " +
                           std::to_string(limits.maxHeaderCount) +
                           " header fields");
  }

  // Body framing. Chunked (or any transfer-coding) is out of scope for
  // a job-submission API; reject it cleanly instead of misparsing.
  if (out.header("transfer-encoding") != nullptr)
    return fail(501, "transfer-encoding is not supported; "
                     "send Content-Length");

  size_t bodyLen = 0;
  if (const std::string* cl = out.header("content-length")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (cl->empty() || end == nullptr || *end != '\0')
      return fail(400, "malformed Content-Length '" + *cl + "'");
    if (v > limits.maxBodyBytes)
      return fail(413, "body of " + *cl + " bytes exceeds limit of " +
                           std::to_string(limits.maxBodyBytes));
    bodyLen = static_cast<size_t>(v);
  }

  if (buffer.size() - headerEnd < bodyLen) return ParseResult{};  // more

  out.body = buffer.substr(headerEnd, bodyLen);
  ParseResult r;
  r.state = ParseState::kDone;
  r.consumed = headerEnd + bodyLen;
  return r;
}

std::string serializeResponse(const HttpResponse& resp) {
  std::string out;
  out += "HTTP/1.1 " + std::to_string(resp.status) + " " +
         statusReason(resp.status) + "\r\n";
  out += "Content-Type: " + resp.contentType + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n";
  for (const auto& [name, value] : resp.extraHeaders)
    out += name + ": " + value + "\r\n";
  out += "\r\n";
  out += resp.body;
  return out;
}

}  // namespace ahfic::serve
