#pragma once
// The /debug dashboard: a self-contained HTML page (no scripts, no
// external assets) rendering the daemon's metrics history ring as
// inline SVG sparklines — queue depth, job throughput, cache hit rate,
// request latency and Newton-iteration percentiles at a glance. The
// page meta-refreshes every few seconds, so a browser tab left open is
// a live view.

#include <string>

#include "obs/history.h"

namespace ahfic::serve {

/// Renders the dashboard over history.window(windowSec) (0 = the whole
/// ring). Always returns a complete page, even for an empty ring.
std::string debugDashboardHtml(const obs::MetricsHistory& history,
                               double windowSec = 0.0);

}  // namespace ahfic::serve
