#pragma once
// Job service: the admission-gated bridge between the HTTP API and the
// persistent runner::Session.
//
// Life of a submission (POST /v1/jobs):
//   1. admission lint — deck submissions run the src/lint preflight
//      synchronously; any error rejects with 422 and the structured
//      "ahfic-lint-v1" report as the response body (the solver never
//      runs). `preflight=false` in the request skips the gate — the
//      escape hatch for decks whose *dynamic* failure is the point
//      (convergence forensics).
//   2. backpressure — the admission queue is bounded; a full queue
//      rejects with 429 instead of letting latency grow without bound.
//      Queue depth feeds the serve.queue_depth and runner.queue_depth
//      gauges.
//   3. execution — a small worker pool pops jobs and runs each as a
//      batch on the shared Session, so the result cache, CSR symbolic
//      factorizations and model-card caches stay warm across requests.
//      An identical resubmission is served bit-identically from cache.
//   4. retrieval — GET /v1/jobs/<id> returns the "ahfic-job-v1"
//      envelope: state, runner status, cache/rung/diag details, the
//      deck listing, and per-job metrics.
//
// Shutdown: stop(drain=true) refuses new work, lets the workers finish
// everything queued (bounded by a timeout), then joins them — SIGTERM
// drains in-flight jobs instead of dropping them.

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "runner/session.h"
#include "util/json.h"
#include "util/mutex.h"

namespace ahfic::serve {

struct JobServiceOptions {
  /// Execution threads. 0 is legal and means "admit but never execute"
  /// — used by backpressure tests and drain tooling.
  int workers = 2;
  /// Admission-queue bound; submissions beyond it get 429.
  int queueDepth = 32;
  /// Completed-entry retention; the oldest done entries beyond this are
  /// forgotten (their ids then answer 404).
  size_t maxRetained = 512;
};

/// What POST /v1/jobs parsed to. Exactly one of `deck` / `workload` is
/// non-empty (validated by the API layer).
struct SubmitRequest {
  std::string deck;      ///< full deck text
  std::string workload;  ///< named workload ("mc-ft", "corner-ft")
  util::JsonValue params;  ///< workload parameters (object or null)
  std::string label;       ///< free-form client label, echoed back
  bool preflight = true;   ///< run the lint admission gate (decks)
  /// Correlation id of the submitting HTTP request; echoed in the job
  /// envelope and propagated down to the runner/analyzer as the job's
  /// trace id.
  std::string requestId;
};

/// Outcome of a submission attempt: an HTTP status plus the response
/// document (job envelope on 202, "ahfic-lint-v1" on 422, error
/// object on 400/429).
struct SubmitOutcome {
  int status = 202;
  util::JsonValue body;
};

class JobService {
 public:
  JobService(runner::Session& session, JobServiceOptions opts);
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Admission: lint gate, queue bound, enqueue. Never throws for bad
  /// requests — the outcome carries the HTTP status.
  SubmitOutcome submit(const SubmitRequest& request);

  /// "ahfic-job-v1" envelope for `id`; found=false -> 404.
  struct StatusOutcome {
    bool found = false;
    util::JsonValue body;
  };
  StatusOutcome status(const std::string& id) const;

  /// Stops accepting; when `drain`, waits up to `timeout` for the queue
  /// to empty and running jobs to finish; then joins the workers.
  /// Idempotent. Returns false when the drain timed out (workers are
  /// still joined; leftover queued jobs stay kQueued forever).
  bool stop(bool drain,
            std::chrono::milliseconds timeout = std::chrono::minutes(2));

  size_t queuedCount() const;
  int runningCount() const;
  bool accepting() const;

 private:
  enum class State { kQueued, kRunning, kDone };

  struct Entry {
    std::string id;
    std::string requestId;  // correlation id of the submitting request
    std::string label;
    std::string kind;      // "deck" | "workload"
    std::string deck;      // deck text (kind == "deck")
    std::string workload;  // workload name (kind == "workload")
    util::JsonValue params;
    State state = State::kQueued;
    std::chrono::steady_clock::time_point submitted;
    double queueMs = 0.0;
    double wallMs = 0.0;
    /// Execution results, valid once state == kDone.
    util::JsonValue result;
  };

  void workerLoop();
  void execute(Entry snapshot, util::JsonValue& result, double& wallMs);
  util::JsonValue envelope(const Entry& e) const AHFIC_REQUIRES(mu_);
  void setQueueGauges(size_t depth) const;
  void trimDoneLocked() AHFIC_REQUIRES(mu_);

  runner::Session& session_;
  JobServiceOptions opts_;

  mutable util::Mutex mu_;
  util::CondVar workCv_;   // workers wait for queue items
  util::CondVar drainCv_;  // stop(drain) waits for idle
  std::deque<std::string> queue_ AHFIC_GUARDED_BY(mu_);
  std::map<std::string, Entry> entries_ AHFIC_GUARDED_BY(mu_);
  /// Retention ring of done ids.
  std::deque<std::string> doneOrder_ AHFIC_GUARDED_BY(mu_);
  std::uint64_t nextId_ AHFIC_GUARDED_BY(mu_) = 1;
  int running_ AHFIC_GUARDED_BY(mu_) = 0;
  bool accepting_ AHFIC_GUARDED_BY(mu_) = true;
  bool stopping_ AHFIC_GUARDED_BY(mu_) = false;
  bool stopped_ AHFIC_GUARDED_BY(mu_) = false;
  /// Created in the ctor, joined in stop(). The join must run without
  /// mu_ held (workers take mu_ to finish), so the vector stays outside
  /// the capability system: stop() is externally serialized (dtor or
  /// the signal-wait thread).
  std::vector<std::thread> workers_;
};

}  // namespace ahfic::serve
