#include "serve/router.h"

#include <algorithm>
#include <set>

namespace ahfic::serve {

const std::string& RouteParams::get(const std::string& name) const {
  static const std::string kEmpty;
  auto it = values.find(name);
  return it == values.end() ? kEmpty : it->second;
}

void Router::add(std::string method, std::string pattern, std::string name,
                 Handler handler) {
  Route r;
  r.method = std::move(method);
  r.segments = splitPath(pattern);
  r.name = std::move(name);
  r.handler = std::move(handler);
  routes_.push_back(std::move(r));
}

std::vector<std::string> Router::splitPath(const std::string& path) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    out.push_back(path.substr(start, end - start));
    start = end;
  }
  return out;
}

bool Router::match(const Route& route,
                   const std::vector<std::string>& segments,
                   RouteParams& params) {
  if (route.segments.size() != segments.size()) return false;
  RouteParams captured;
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string& pat = route.segments[i];
    if (pat.size() >= 2 && pat.front() == '<' && pat.back() == '>') {
      captured.values[pat.substr(1, pat.size() - 2)] =
          percentDecode(segments[i]);
    } else if (pat != segments[i]) {
      return false;
    }
  }
  params = std::move(captured);
  return true;
}

Router::Dispatched Router::dispatch(const HttpRequest& req) const {
  const std::vector<std::string> segments = splitPath(req.path);

  std::set<std::string> allowed;  // methods matching the path
  for (const Route& route : routes_) {
    RouteParams params;
    if (!match(route, segments, params)) continue;
    if (route.method != req.method) {
      allowed.insert(route.method);
      continue;
    }
    Dispatched d;
    d.routeName = route.name;
    try {
      d.response = route.handler(req, params);
    } catch (const std::exception& e) {
      d.response = HttpResponse::error(
          500, std::string("handler failed: ") + e.what());
    } catch (...) {
      d.response = HttpResponse::error(500, "handler failed");
    }
    return d;
  }

  Dispatched d;
  if (!allowed.empty()) {
    d.response = HttpResponse::error(
        405, "method " + req.method + " not allowed for " + req.path);
    std::string allow;
    for (const std::string& m : allowed)
      allow += (allow.empty() ? "" : ", ") + m;
    d.response.extraHeaders.emplace_back("Allow", allow);
  } else {
    d.response = HttpResponse::error(404, "no route for " + req.path);
  }
  return d;
}

std::vector<std::string> Router::routeNames() const {
  std::set<std::string> names{"other"};
  for (const Route& r : routes_) names.insert(r.name);
  return {names.begin(), names.end()};
}

}  // namespace ahfic::serve
