#include "ahdl/system.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace ahfic::ahdl {

const std::vector<double>& SimResult::trace(const std::string& signal) const {
  auto it = traces.find(signal);
  if (it == traces.end())
    throw Error("SimResult: signal '" + signal + "' was not probed");
  return it->second;
}

int System::signal(const std::string& name) {
  auto it = signalIds_.find(name);
  if (it != signalIds_.end()) return it->second;
  const int id = static_cast<int>(signalNames_.size());
  signalNames_.push_back(name);
  signalIds_[name] = id;
  return id;
}

int System::findSignal(const std::string& name) const {
  auto it = signalIds_.find(name);
  return it == signalIds_.end() ? -1 : it->second;
}

const std::string& System::signalName(int id) const {
  if (id < 0 || id >= signalCount())
    throw Error("System::signalName: bad id " + std::to_string(id));
  return signalNames_[static_cast<size_t>(id)];
}

Block& System::addBlock(std::unique_ptr<Block> block,
                        const std::vector<std::string>& inputs,
                        const std::vector<std::string>& outputs) {
  if (!block) throw Error("System::addBlock: null block");
  if (static_cast<int>(inputs.size()) != block->inputCount())
    throw Error("block '" + block->name() + "' expects " +
                std::to_string(block->inputCount()) + " inputs, got " +
                std::to_string(inputs.size()));
  if (static_cast<int>(outputs.size()) != block->outputCount())
    throw Error("block '" + block->name() + "' expects " +
                std::to_string(block->outputCount()) + " outputs, got " +
                std::to_string(outputs.size()));
  Binding b;
  b.block = std::move(block);
  for (const auto& s : inputs) b.in.push_back(signal(s));
  for (const auto& s : outputs) b.out.push_back(signal(s));
  blocks_.push_back(std::move(b));
  return *blocks_.back().block;
}

std::vector<System::BlockView> System::blockViews() const {
  std::vector<BlockView> views;
  views.reserve(blocks_.size());
  for (const auto& b : blocks_)
    views.push_back(BlockView{b.block.get(), &b.in, &b.out});
  return views;
}

void System::probe(const std::string& signal) {
  if (std::find(probes_.begin(), probes_.end(), signal) == probes_.end())
    probes_.push_back(signal);
}

SimResult System::run(double tstop, double sampleRate, double recordFrom) {
  if (tstop <= 0.0 || sampleRate <= 0.0)
    throw Error("System::run: tstop and sampleRate must be > 0");
  for (const auto& p : probes_) {
    if (findSignal(p) < 0)
      throw Error("System::run: probed signal '" + p + "' does not exist");
  }

  static const obs::Counter runs = obs::counter("ahdl.runs");
  static const obs::Counter blockEvals = obs::counter("ahdl.block_evals");
  runs.add();
  obs::ScopedSpan span("ahdl.run", "ahdl");

  for (auto& b : blocks_) b.block->prepare(sampleRate);

  const auto n = static_cast<size_t>(tstop * sampleRate);
  std::vector<double> values(static_cast<size_t>(signalCount()), 0.0);
  std::vector<double> inBuf, outBuf;

  SimResult result;
  result.sampleRate = sampleRate;
  for (const auto& p : probes_) result.traces[p];  // create entries

  const double dt = 1.0 / sampleRate;
  for (size_t k = 0; k < n; ++k) {
    const double t = static_cast<double>(k) * dt;
    for (auto& b : blocks_) {
      inBuf.resize(b.in.size());
      outBuf.resize(b.out.size());
      for (size_t i = 0; i < b.in.size(); ++i)
        inBuf[i] = values[static_cast<size_t>(b.in[i])];
      b.block->step(inBuf, outBuf, t);
      for (size_t i = 0; i < b.out.size(); ++i)
        values[static_cast<size_t>(b.out[i])] = outBuf[i];
    }
    if (t >= recordFrom) {
      result.time.push_back(t);
      for (const auto& p : probes_)
        result.traces[p].push_back(
            values[static_cast<size_t>(findSignal(p))]);
    }
  }
  // Flushed once: per-sample counter writes would dominate small blocks.
  blockEvals.add(static_cast<long long>(n) *
                 static_cast<long long>(blocks_.size()));
  span.note("samples", static_cast<double>(n));
  return result;
}

}  // namespace ahfic::ahdl
