#include "ahdl/filter.h"

#include <cmath>
#include <complex>

#include "util/error.h"
#include "util/units.h"

namespace ahfic::ahdl {

using util::constants::kPi;

BiquadChain::BiquadChain(std::vector<Biquad> sections)
    : sections_(std::move(sections)),
      z1_(sections_.size(), 0.0),
      z2_(sections_.size(), 0.0) {}

double BiquadChain::process(double x) {
  for (size_t i = 0; i < sections_.size(); ++i)
    x = sections_[i].process(x, z1_[i], z2_[i]);
  return x;
}

void BiquadChain::reset() {
  std::fill(z1_.begin(), z1_.end(), 0.0);
  std::fill(z2_.begin(), z2_.end(), 0.0);
}

double BiquadChain::magnitudeAt(double f, double fs) const {
  const std::complex<double> z =
      std::exp(std::complex<double>(0.0, -2.0 * kPi * f / fs));
  std::complex<double> h(1.0, 0.0);
  for (const auto& s : sections_) {
    h *= (s.b0 + s.b1 * z + s.b2 * z * z) /
         (1.0 + s.a1 * z + s.a2 * z * z);
  }
  return std::abs(h);
}

namespace {

void checkArgs(int order, double fc, double fs) {
  if (order < 1 || order > 12)
    throw Error("butterworth: order must be in [1, 12]");
  if (!(fc > 0.0) || fc >= fs / 2.0)
    throw Error("butterworth: cutoff must satisfy 0 < fc < fs/2");
}

/// RBJ cookbook second-order section.
Biquad rbjSection(bool highpass, double fc, double q, double fs) {
  const double w0 = 2.0 * kPi * fc / fs;
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha;
  Biquad s;
  if (!highpass) {
    s.b0 = (1.0 - cw) / 2.0 / a0;
    s.b1 = (1.0 - cw) / a0;
    s.b2 = s.b0;
  } else {
    s.b0 = (1.0 + cw) / 2.0 / a0;
    s.b1 = -(1.0 + cw) / a0;
    s.b2 = s.b0;
  }
  s.a1 = (-2.0 * cw) / a0;
  s.a2 = (1.0 - alpha) / a0;
  return s;
}

/// First-order section via bilinear transform.
Biquad firstOrder(bool highpass, double fc, double fs) {
  const double k = std::tan(kPi * fc / fs);
  const double a0 = k + 1.0;
  Biquad s;
  if (!highpass) {
    s.b0 = k / a0;
    s.b1 = k / a0;
  } else {
    s.b0 = 1.0 / a0;
    s.b1 = -1.0 / a0;
  }
  s.b2 = 0.0;
  s.a1 = (k - 1.0) / a0;
  s.a2 = 0.0;
  return s;
}

BiquadChain butterworth(bool highpass, int order, double fc, double fs) {
  checkArgs(order, fc, fs);
  std::vector<Biquad> sections;
  const int pairs = order / 2;
  for (int i = 0; i < pairs; ++i) {
    // Butterworth pole-pair angle from the negative real axis:
    // phi = pi*(n - 1 - 2i) / (2n), i = 0 .. n/2 - 1.
    const double phi = kPi * (order - 1.0 - 2.0 * i) / (2.0 * order);
    const double q = 1.0 / (2.0 * std::cos(phi));
    sections.push_back(rbjSection(highpass, fc, q, fs));
  }
  if (order % 2 == 1) sections.push_back(firstOrder(highpass, fc, fs));
  return BiquadChain(std::move(sections));
}

}  // namespace

BiquadChain butterworthLowpass(int order, double fc, double fs) {
  return butterworth(false, order, fc, fs);
}

BiquadChain butterworthHighpass(int order, double fc, double fs) {
  return butterworth(true, order, fc, fs);
}

BiquadChain butterworthBandpass(int order, double f1, double f2, double fs) {
  if (!(f1 > 0.0) || f2 <= f1 || f2 >= fs / 2.0)
    throw Error("butterworthBandpass: need 0 < f1 < f2 < fs/2");
  auto hp = butterworthHighpass(order, f1, fs);
  auto lp = butterworthLowpass(order, f2, fs);
  std::vector<Biquad> all = hp.sections();
  for (const auto& s : lp.sections()) all.push_back(s);
  return BiquadChain(std::move(all));
}

}  // namespace ahfic::ahdl
