#pragma once
// IIR filter design for behavioural blocks: biquad sections and
// Butterworth low-/high-/band-pass design (RBJ bilinear-transform
// sections with Butterworth pole Q values).

#include <cstddef>
#include <vector>

namespace ahfic::ahdl {

/// One direct-form-II-transposed biquad section.
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;  ///< numerator
  double a1 = 0.0, a2 = 0.0;            ///< denominator (a0 normalised to 1)

  /// Processes one sample, updating the two state registers.
  double process(double x, double& z1, double& z2) const {
    const double y = b0 * x + z1;
    z1 = b1 * x - a1 * y + z2;
    z2 = b2 * x - a2 * y;
    return y;
  }
};

/// A cascade of biquads with its state; copyable value type.
class BiquadChain {
 public:
  BiquadChain() = default;
  explicit BiquadChain(std::vector<Biquad> sections);

  /// Filters one sample through the cascade.
  double process(double x);
  /// Clears the state registers.
  void reset();

  size_t sectionCount() const { return sections_.size(); }
  const std::vector<Biquad>& sections() const { return sections_; }

  /// Magnitude response at frequency f for sample rate fs (analysis aid).
  double magnitudeAt(double f, double fs) const;

 private:
  std::vector<Biquad> sections_;
  std::vector<double> z1_, z2_;
};

/// Butterworth low-pass of order `order` with cutoff `fc` at sample rate
/// `fs`. Throws ahfic::Error for fc >= fs/2 or order < 1.
BiquadChain butterworthLowpass(int order, double fc, double fs);

/// Butterworth high-pass.
BiquadChain butterworthHighpass(int order, double fc, double fs);

/// Band-pass as a cascade of an order-`order` high-pass at f1 and an
/// order-`order` low-pass at f2 (wideband approximation; suits the tuner's
/// IF filters). Requires f1 < f2 < fs/2.
BiquadChain butterworthBandpass(int order, double f1, double f2, double fs);

}  // namespace ahfic::ahdl
