#pragma once
// Behavioural (AHDL) simulation engine.
//
// Models the paper's Sec. 2 methodology: every function block of an analog
// system is described behaviourally and the whole chain is simulated at a
// fixed sample rate far above the highest carrier. Blocks form a dataflow
// graph over named signals; blocks execute in declaration order each step,
// so a signal read before its producer has run this step carries the
// previous step's value (an implicit unit delay, which is also how
// feedback loops are closed).

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace ahfic::ahdl {

/// A behavioural block: nIn input samples -> nOut output samples per step.
class Block {
 public:
  Block(std::string name, int nIn, int nOut)
      : name_(std::move(name)), nIn_(nIn), nOut_(nOut) {}
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  const std::string& name() const { return name_; }
  int inputCount() const { return nIn_; }
  int outputCount() const { return nOut_; }

  /// Called once before a run with the sample rate [Hz]; blocks size their
  /// internal state (delay lines, filter registers) here.
  virtual void prepare(double sampleRate) { (void)sampleRate; }

  /// Computes one output sample per output port at time `t`.
  virtual void step(std::span<const double> in, std::span<double> out,
                    double t) = 0;

  /// True for blocks whose output depends on past samples (delay lines,
  /// filter registers, accumulated phase, hysteresis). Memoryless blocks
  /// inside a feedback loop rely entirely on the engine's implicit
  /// one-sample declaration-order delay — the lint pass flags such loops.
  virtual bool hasMemory() const { return false; }

 protected:
  /// Allows variable-arity blocks (e.g. adders) to fix their input count
  /// at construction.
  void setInputCount(int n) { nIn_ = n; }

 private:
  std::string name_;
  int nIn_;
  int nOut_;
};

/// Recorded waveforms of a run.
struct SimResult {
  double sampleRate = 0.0;
  std::vector<double> time;
  std::map<std::string, std::vector<double>> traces;

  /// Trace for `signal`; throws ahfic::Error when it was not probed.
  const std::vector<double>& trace(const std::string& signal) const;
};

/// The block graph plus named signals.
class System {
 public:
  System() = default;

  /// Returns the signal index for `name`, creating it if needed.
  int signal(const std::string& name);
  /// Index or -1 (const lookup).
  int findSignal(const std::string& name) const;
  int signalCount() const { return static_cast<int>(signalNames_.size()); }
  const std::string& signalName(int id) const;

  /// Adds a block reading `inputs` and writing `outputs` (signal names;
  /// created on demand). Arity must match the block. Returns the block.
  Block& addBlock(std::unique_ptr<Block> block,
                  const std::vector<std::string>& inputs,
                  const std::vector<std::string>& outputs);

  /// Typed convenience wrapper over addBlock.
  template <typename T, typename... Args>
  T& add(const std::vector<std::string>& inputs,
         const std::vector<std::string>& outputs, Args&&... args) {
    auto blk = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *blk;
    addBlock(std::move(blk), inputs, outputs);
    return ref;
  }

  /// Marks a signal for recording.
  void probe(const std::string& signal);

  size_t blockCount() const { return blocks_.size(); }

  /// Read-only view of one block and its signal wiring, for inspection
  /// passes (lint) that must see the dataflow graph.
  struct BlockView {
    const Block* block = nullptr;
    const std::vector<int>* inputs = nullptr;
    const std::vector<int>* outputs = nullptr;
  };
  std::vector<BlockView> blockViews() const;

  const std::vector<std::string>& probes() const { return probes_; }

  /// Simulates [0, tstop) at `sampleRate`, recording probed signals.
  /// `recordFrom` discards earlier samples (filter settling).
  SimResult run(double tstop, double sampleRate, double recordFrom = 0.0);

 private:
  struct Binding {
    std::unique_ptr<Block> block;
    std::vector<int> in;
    std::vector<int> out;
  };
  std::vector<std::string> signalNames_;
  std::map<std::string, int> signalIds_;
  std::vector<Binding> blocks_;
  std::vector<std::string> probes_;
};

}  // namespace ahfic::ahdl
