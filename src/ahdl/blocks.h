#pragma once
// Standard behavioural block library: the function blocks the paper's
// tuner example is built from (sources, amplifiers, mixers, quadrature
// oscillators, 90-degree phase shifters, adders, filters, limiters).
//
// Non-idealities are explicit constructor parameters — gain imbalance,
// phase error, compression — because deriving per-block specifications for
// exactly these quantities is the point of the top-down method (Fig. 5).

#include <cstdint>

#include "ahdl/filter.h"
#include "ahdl/system.h"
#include "util/numeric.h"

namespace ahfic::ahdl {

/// Sine source: offset + amp * sin(2*pi*f*t + phase).
class SineSource final : public Block {
 public:
  SineSource(std::string name, double freqHz, double amplitude,
             double phaseDeg = 0.0, double offset = 0.0);
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double freq_, amp_, phaseRad_, offset_;
};

/// Constant source.
class DcSource final : public Block {
 public:
  DcSource(std::string name, double value);
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double value_;
};

/// White Gaussian noise source (deterministic seed).
class NoiseSource final : public Block {
 public:
  NoiseSource(std::string name, double sigma, std::uint64_t seed = 1);
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double sigma_;
  util::Rng rng_;
};

/// Amplifier with optional soft (tanh) compression.
/// out = vsat * tanh(gain * in / vsat); vsat <= 0 disables compression.
class Amplifier final : public Block {
 public:
  Amplifier(std::string name, double gain, double vsat = 0.0);
  void step(std::span<const double> in, std::span<double> out,
            double t) override;
  double gain() const { return gain_; }
  void setGain(double g) { gain_ = g; }

 private:
  double gain_, vsat_;
};

/// Multiplying mixer: out = gain * in0 * in1.
class Mixer final : public Block {
 public:
  Mixer(std::string name, double gain = 1.0);
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double gain_;
};

/// Weighted adder of n inputs (weights default to 1).
class Adder final : public Block {
 public:
  Adder(std::string name, int nInputs);
  Adder(std::string name, std::vector<double> weights);
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  std::vector<double> weights_;
};

/// Quadrature local oscillator with impairments — the paper's VCO with
/// two outputs 90 degrees apart. Output 0: amp*cos(wt); output 1:
/// amp*(1+gainImbalance)*sin(wt + phaseErrorDeg).
class QuadratureOscillator final : public Block {
 public:
  QuadratureOscillator(std::string name, double freqHz, double amplitude,
                       double phaseErrorDeg = 0.0,
                       double gainImbalance = 0.0);
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double freq_, amp_, phaseErrRad_, gainImb_;
};

/// Narrowband 90-degree phase shifter implemented as a fractional-sample
/// delay of (90 + errorDeg)/360 of the centre-frequency period, with
/// linear interpolation. Accurate for signals near `centerFreq` when the
/// sample rate is well above it.
class PhaseShifter90 final : public Block {
 public:
  PhaseShifter90(std::string name, double centerFreqHz,
                 double errorDeg = 0.0);
  void prepare(double sampleRate) override;
  bool hasMemory() const override { return true; }
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double centerFreq_, errorDeg_;
  std::vector<double> line_;
  size_t head_ = 0;
  double frac_ = 0.0;
  size_t intDelay_ = 0;
};

/// IIR filter block wrapping a designed BiquadChain.
class FilterBlock final : public Block {
 public:
  /// The chain must have been designed for the run's sample rate; prefer
  /// the Design factory below when the rate is known only at run time.
  FilterBlock(std::string name, BiquadChain chain);

  /// Deferred design: the chain is created in prepare() for the actual
  /// sample rate. Kind selects the design function. With
  /// `clampToNyquist`, corner frequencies above 0.45*fs are clamped
  /// instead of rejected — used for extracted models whose bandwidth may
  /// exceed the behavioural run's Nyquist (the pole is then irrelevant).
  enum class Kind { kLowpass, kHighpass, kBandpass };
  FilterBlock(std::string name, Kind kind, int order, double f1,
              double f2 = 0.0, bool clampToNyquist = false);

  void prepare(double sampleRate) override;
  bool hasMemory() const override { return true; }
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  BiquadChain chain_;
  bool deferred_ = false;
  Kind kind_ = Kind::kLowpass;
  int order_ = 0;
  double f1_ = 0.0, f2_ = 0.0;
  bool clampToNyquist_ = false;
};

/// Hard limiter: clamps to [-level, +level].
class Limiter final : public Block {
 public:
  Limiter(std::string name, double level);
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double level_;
};

/// Ideal attenuator/gain in dB.
class AttenuatorDb final : public Block {
 public:
  AttenuatorDb(std::string name, double db);
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double factor_;
};

/// Voltage-controlled oscillator with phase accumulation:
/// f(t) = f0 + kvco * vctl(t); outputs amp*sin(phase) and amp*cos(phase).
/// The running phase makes it usable inside feedback loops (PLLs) — the
/// engine's declaration-order semantics close the loop with one sample of
/// delay.
class Vco final : public Block {
 public:
  Vco(std::string name, double centerFreqHz, double kvcoHzPerVolt,
      double amplitude = 1.0);
  void prepare(double sampleRate) override;
  bool hasMemory() const override { return true; }
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double f0_, kvco_, amp_;
  double dt_ = 0.0;
  double phase_ = 0.0;
};

/// Discrete-time integrator: out += gain * in * dt. Used for loop filters.
class IntegratorBlock final : public Block {
 public:
  IntegratorBlock(std::string name, double gain = 1.0,
                  double initial = 0.0);
  void prepare(double sampleRate) override;
  bool hasMemory() const override { return true; }
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double gain_, initial_;
  double dt_ = 0.0;
  double acc_ = 0.0;
};

/// Comparator with hysteresis: out = +high when in > threshold + hyst/2,
/// low when in < threshold - hyst/2, held in between. The front of every
/// ADC — the paper's systems convert to digital after the analog chain.
class Comparator final : public Block {
 public:
  Comparator(std::string name, double threshold = 0.0, double hyst = 0.0,
             double low = 0.0, double high = 1.0);
  void prepare(double sampleRate) override;
  bool hasMemory() const override { return true; }
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double threshold_, hyst_, low_, high_;
  bool state_ = false;
};

/// Sample-and-hold: captures the input on the rising edge of the clock
/// input (threshold 0.5), holds otherwise. Inputs: (signal, clock).
class SampleHold final : public Block {
 public:
  explicit SampleHold(std::string name);
  void prepare(double sampleRate) override;
  bool hasMemory() const override { return true; }
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  double held_ = 0.0;
  bool lastClockHigh_ = false;
};

/// Digital frequency divider (/N): toggles its +/-1 output every N rising
/// edges of the input's mean-zero square/sine, giving an output at
/// f_in / (2N)... conventionally a /N divider toggles every N/2 edges;
/// here out frequency = f_in / N for even N, implemented as toggle every
/// N/2 rising edges (N must be even). The prescaler of every PLL
/// synthesiser, e.g. the tuner's channel-select PLL.
class FrequencyDivider final : public Block {
 public:
  /// `divideBy` must be even and >= 2.
  FrequencyDivider(std::string name, int divideBy);
  void prepare(double sampleRate) override;
  bool hasMemory() const override { return true; }
  void step(std::span<const double> in, std::span<double> out,
            double t) override;

 private:
  int halfCount_;
  int edges_ = 0;
  double out_ = 1.0;
  bool lastHigh_ = false;
};

}  // namespace ahfic::ahdl
