#pragma once
// The AHDL netlist language: behavioural module definitions in the style
// of the paper's Fig. 1 snippet, plus instantiation of built-in blocks.
//
//   // behavioural amplifier, as in the paper:
//   module amp (in, out) {
//     parameter real gain = 1;
//     analog { V(out) <- gain * V(in); }
//   }
//
//   signal rf, ifo;
//   instance src = sine(freq=45MEG, amp=1) (rf);
//   instance a1  = amp(gain=4) (rf, ifo);
//   probe ifo;
//   run tstop=1u, fs=2G;
//
// Built-in block types (port order in parentheses):
//   sine(freq, amp, phase=0, offset=0)        (out)
//   dc(value)                                 (out)
//   noise(sigma, seed=1)                      (out)
//   amp(gain, vsat=0)                         (in, out)
//   mixer(gain=1)                             (a, b, out)
//   adder2()                                  (a, b, out)
//   adder3()                                  (a, b, c, out)
//   subtract()                                (a, b, out)   [out = a - b]
//   quadlo(freq, amp=1, phase_error=0, gain_imbalance=0)  (i, q)
//   phase90(fc, error=0)                      (in, out)
//   lowpass(order, fc)                        (in, out)
//   highpass(order, fc)                       (in, out)
//   bandpass(order, f1, f2)                   (in, out)
//   limiter(level)                            (in, out)
//   attenuator(db)                            (in, out)
//   vco(freq, kvco=0, amp=1)                  (ctl, sin, cos)
//   integrator(gain=1, initial=0)             (in, out)
//   comparator(threshold=0, hyst=0, low=0, high=1)  (in, out)
//   samplehold()                              (signal, clock, out)
//   divider(n)                                (in, out)   [even n]
//
// `//` and `#` start comments. Statements end with ';'. Numbers accept
// SPICE suffixes. A module's analog body may contain several assignments;
// each becomes one expression block at elaboration.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ahdl/expr.h"
#include "ahdl/system.h"

namespace ahfic::ahdl {

/// Requested simulation run (the `run` statement).
struct RunSpec {
  double tstop = 0.0;
  double sampleRate = 0.0;
  double recordFrom = 0.0;
};

/// A parsed + elaborated AHDL netlist, ready to run.
struct AhdlNetlist {
  System system;
  std::vector<std::string> probes;
  std::optional<RunSpec> runSpec;

  /// Runs with the netlist's own run spec; throws when none was given.
  SimResult run();
};

/// Parses and elaborates an AHDL netlist. Throws ahfic::ParseError with
/// line information on malformed input.
AhdlNetlist parseAhdl(const std::string& text);

/// Expression block: evaluates `V(out) <- expr` each step. Public so the
/// C++ API can use behavioural expressions directly.
class ExprBlock final : public Block {
 public:
  /// `inputs` are the signal names the expression references, in the
  /// order they will be wired to this block's input ports.
  ExprBlock(std::string name, ExprPtr expr, std::vector<std::string> inputs,
            std::map<std::string, double> params);

  void step(std::span<const double> in, std::span<double> out,
            double t) override;

  const std::vector<std::string>& inputSignals() const { return inputs_; }
  /// The parsed right-hand side, for inspection passes (lint).
  const ExprNode& expr() const { return *expr_; }
  const std::map<std::string, double>& params() const { return params_; }

 private:
  ExprPtr expr_;
  std::vector<std::string> inputs_;
  std::map<std::string, double> params_;
};

}  // namespace ahfic::ahdl
