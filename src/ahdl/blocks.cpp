#include "ahdl/blocks.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace ahfic::ahdl {

using util::constants::kPi;
using util::constants::kTwoPi;

SineSource::SineSource(std::string name, double freqHz, double amplitude,
                       double phaseDeg, double offset)
    : Block(std::move(name), 0, 1),
      freq_(freqHz),
      amp_(amplitude),
      phaseRad_(phaseDeg * kPi / 180.0),
      offset_(offset) {
  if (freqHz <= 0.0) throw Error("SineSource: frequency must be > 0");
}

void SineSource::step(std::span<const double>, std::span<double> out,
                      double t) {
  out[0] = offset_ + amp_ * std::sin(kTwoPi * freq_ * t + phaseRad_);
}

DcSource::DcSource(std::string name, double value)
    : Block(std::move(name), 0, 1), value_(value) {}

void DcSource::step(std::span<const double>, std::span<double> out, double) {
  out[0] = value_;
}

NoiseSource::NoiseSource(std::string name, double sigma, std::uint64_t seed)
    : Block(std::move(name), 0, 1), sigma_(sigma), rng_(seed) {
  if (sigma < 0.0) throw Error("NoiseSource: sigma must be >= 0");
}

void NoiseSource::step(std::span<const double>, std::span<double> out,
                       double) {
  out[0] = rng_.normal(0.0, sigma_);
}

Amplifier::Amplifier(std::string name, double gain, double vsat)
    : Block(std::move(name), 1, 1), gain_(gain), vsat_(vsat) {}

void Amplifier::step(std::span<const double> in, std::span<double> out,
                     double) {
  const double x = gain_ * in[0];
  out[0] = (vsat_ > 0.0) ? vsat_ * std::tanh(x / vsat_) : x;
}

Mixer::Mixer(std::string name, double gain)
    : Block(std::move(name), 2, 1), gain_(gain) {}

void Mixer::step(std::span<const double> in, std::span<double> out, double) {
  out[0] = gain_ * in[0] * in[1];
}

Adder::Adder(std::string name, int nInputs)
    : Block(std::move(name), nInputs, 1),
      weights_(static_cast<size_t>(nInputs), 1.0) {
  if (nInputs < 1) throw Error("Adder: need at least one input");
}

Adder::Adder(std::string name, std::vector<double> weights)
    : Block(std::move(name), static_cast<int>(weights.size()), 1),
      weights_(std::move(weights)) {
  if (weights_.empty()) throw Error("Adder: need at least one input");
}

void Adder::step(std::span<const double> in, std::span<double> out, double) {
  double s = 0.0;
  for (size_t i = 0; i < weights_.size(); ++i) s += weights_[i] * in[i];
  out[0] = s;
}

QuadratureOscillator::QuadratureOscillator(std::string name, double freqHz,
                                           double amplitude,
                                           double phaseErrorDeg,
                                           double gainImbalance)
    : Block(std::move(name), 0, 2),
      freq_(freqHz),
      amp_(amplitude),
      phaseErrRad_(phaseErrorDeg * kPi / 180.0),
      gainImb_(gainImbalance) {
  if (freqHz <= 0.0)
    throw Error("QuadratureOscillator: frequency must be > 0");
}

void QuadratureOscillator::step(std::span<const double>,
                                std::span<double> out, double t) {
  const double w = kTwoPi * freq_ * t;
  out[0] = amp_ * std::cos(w);
  out[1] = amp_ * (1.0 + gainImb_) * std::sin(w + phaseErrRad_);
}

PhaseShifter90::PhaseShifter90(std::string name, double centerFreqHz,
                               double errorDeg)
    : Block(std::move(name), 1, 1),
      centerFreq_(centerFreqHz),
      errorDeg_(errorDeg) {
  if (centerFreqHz <= 0.0)
    throw Error("PhaseShifter90: centre frequency must be > 0");
}

void PhaseShifter90::prepare(double sampleRate) {
  const double delaySeconds =
      (90.0 + errorDeg_) / 360.0 / centerFreq_;
  const double delaySamples = delaySeconds * sampleRate;
  if (delaySamples < 1.0)
    throw Error("PhaseShifter90 '" + name() +
                "': sample rate too low for the requested shift");
  intDelay_ = static_cast<size_t>(delaySamples);
  frac_ = delaySamples - static_cast<double>(intDelay_);
  line_.assign(intDelay_ + 2, 0.0);
  head_ = 0;
}

void PhaseShifter90::step(std::span<const double> in, std::span<double> out,
                          double) {
  line_[head_] = in[0];
  const size_t n = line_.size();
  const size_t i0 = (head_ + n - intDelay_) % n;
  const size_t i1 = (head_ + n - intDelay_ - 1) % n;
  out[0] = (1.0 - frac_) * line_[i0] + frac_ * line_[i1];
  head_ = (head_ + 1) % n;
}

FilterBlock::FilterBlock(std::string name, BiquadChain chain)
    : Block(std::move(name), 1, 1), chain_(std::move(chain)) {}

FilterBlock::FilterBlock(std::string name, Kind kind, int order, double f1,
                         double f2, bool clampToNyquist)
    : Block(std::move(name), 1, 1),
      deferred_(true),
      kind_(kind),
      order_(order),
      f1_(f1),
      f2_(f2),
      clampToNyquist_(clampToNyquist) {}

void FilterBlock::prepare(double sampleRate) {
  if (deferred_) {
    double f1 = f1_, f2 = f2_;
    if (clampToNyquist_) {
      f1 = std::min(f1, 0.45 * sampleRate);
      f2 = std::min(f2, 0.45 * sampleRate);
    }
    switch (kind_) {
      case Kind::kLowpass:
        chain_ = butterworthLowpass(order_, f1, sampleRate);
        break;
      case Kind::kHighpass:
        chain_ = butterworthHighpass(order_, f1, sampleRate);
        break;
      case Kind::kBandpass:
        chain_ = butterworthBandpass(order_, f1, f2, sampleRate);
        break;
    }
  }
  chain_.reset();
}

void FilterBlock::step(std::span<const double> in, std::span<double> out,
                       double) {
  out[0] = chain_.process(in[0]);
}

Limiter::Limiter(std::string name, double level)
    : Block(std::move(name), 1, 1), level_(level) {
  if (level <= 0.0) throw Error("Limiter: level must be > 0");
}

void Limiter::step(std::span<const double> in, std::span<double> out,
                   double) {
  out[0] = std::clamp(in[0], -level_, level_);
}

AttenuatorDb::AttenuatorDb(std::string name, double db)
    : Block(std::move(name), 1, 1), factor_(std::pow(10.0, db / 20.0)) {}

void AttenuatorDb::step(std::span<const double> in, std::span<double> out,
                        double) {
  out[0] = factor_ * in[0];
}

Vco::Vco(std::string name, double centerFreqHz, double kvcoHzPerVolt,
         double amplitude)
    : Block(std::move(name), 1, 2),
      f0_(centerFreqHz),
      kvco_(kvcoHzPerVolt),
      amp_(amplitude) {
  if (centerFreqHz <= 0.0) throw Error("Vco: centre frequency must be > 0");
}

void Vco::prepare(double sampleRate) {
  dt_ = 1.0 / sampleRate;
  phase_ = 0.0;
}

void Vco::step(std::span<const double> in, std::span<double> out, double) {
  const double f = std::max(f0_ + kvco_ * in[0], 0.0);
  phase_ += kTwoPi * f * dt_;
  if (phase_ > 64.0 * kTwoPi) phase_ -= 64.0 * kTwoPi;  // keep it bounded
  out[0] = amp_ * std::sin(phase_);
  out[1] = amp_ * std::cos(phase_);
}

IntegratorBlock::IntegratorBlock(std::string name, double gain,
                                 double initial)
    : Block(std::move(name), 1, 1), gain_(gain), initial_(initial) {}

void IntegratorBlock::prepare(double sampleRate) {
  dt_ = 1.0 / sampleRate;
  acc_ = initial_;
}

void IntegratorBlock::step(std::span<const double> in, std::span<double> out,
                           double) {
  acc_ += gain_ * in[0] * dt_;
  out[0] = acc_;
}

Comparator::Comparator(std::string name, double threshold, double hyst,
                       double low, double high)
    : Block(std::move(name), 1, 1),
      threshold_(threshold),
      hyst_(hyst),
      low_(low),
      high_(high) {
  if (hyst < 0.0) throw Error("Comparator: hysteresis must be >= 0");
}

void Comparator::prepare(double) { state_ = false; }

void Comparator::step(std::span<const double> in, std::span<double> out,
                      double) {
  if (in[0] > threshold_ + hyst_ / 2.0)
    state_ = true;
  else if (in[0] < threshold_ - hyst_ / 2.0)
    state_ = false;
  out[0] = state_ ? high_ : low_;
}

SampleHold::SampleHold(std::string name) : Block(std::move(name), 2, 1) {}

void SampleHold::prepare(double) {
  held_ = 0.0;
  lastClockHigh_ = false;
}

void SampleHold::step(std::span<const double> in, std::span<double> out,
                      double) {
  const bool clockHigh = in[1] > 0.5;
  if (clockHigh && !lastClockHigh_) held_ = in[0];
  lastClockHigh_ = clockHigh;
  out[0] = held_;
}

FrequencyDivider::FrequencyDivider(std::string name, int divideBy)
    : Block(std::move(name), 1, 1), halfCount_(divideBy / 2) {
  if (divideBy < 2 || divideBy % 2 != 0)
    throw Error("FrequencyDivider: divide ratio must be even and >= 2");
}

void FrequencyDivider::prepare(double) {
  edges_ = 0;
  out_ = 1.0;
  lastHigh_ = false;
}

void FrequencyDivider::step(std::span<const double> in,
                            std::span<double> out, double) {
  const bool high = in[0] > 0.0;
  if (high && !lastHigh_) {
    if (++edges_ >= halfCount_) {
      edges_ = 0;
      out_ = -out_;
    }
  }
  lastHigh_ = high;
  out[0] = out_;
}

}  // namespace ahfic::ahdl
