#pragma once
// Expression engine for the AHDL language: the right-hand sides of
// `V(out) <- gain * V(in);` analog assignments.
//
// Grammar (precedence climbing):
//   expr    := term  (('+'|'-') term)*
//   term    := factor (('*'|'/') factor)*
//   factor  := unary ('^' factor)?          (right associative)
//   unary   := ('-'|'+') unary | primary
//   primary := NUMBER | 'V' '(' NAME ')' | NAME '(' expr {',' expr} ')'
//            | NAME | '(' expr ')'
//
// NUMBER accepts SPICE engineering suffixes (45MEG, 1.2u). NAME resolves
// to a parameter, the time variable `t`, or the constant `pi`. Functions:
// sin cos tan exp log sqrt abs tanh atan min max pow atan2.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ahfic::ahdl {

/// Expression AST node.
struct ExprNode {
  enum class Kind { kNumber, kVar, kSignal, kUnary, kBinary, kCall };
  Kind kind = Kind::kNumber;
  double number = 0.0;     ///< kNumber
  std::string name;        ///< kVar / kSignal / kCall
  char op = 0;             ///< kUnary / kBinary
  std::vector<std::unique_ptr<ExprNode>> args;
};

using ExprPtr = std::unique_ptr<ExprNode>;

/// Values an expression can see during evaluation.
struct EvalContext {
  double t = 0.0;                              ///< simulation time
  const std::map<std::string, double>* params = nullptr;
  /// Resolves V(name); may be null when the expression has no signals.
  std::function<double(const std::string&)> signalValue;
};

/// Parses an expression from `text` starting at `pos`; advances `pos` to
/// the first unconsumed character. Throws ahfic::ParseError on syntax
/// errors.
ExprPtr parseExpression(const std::string& text, size_t& pos);

/// Parses a complete expression (whole string must be consumed).
ExprPtr parseExpression(const std::string& text);

/// Evaluates; throws ahfic::Error on unknown names.
double evalExpr(const ExprNode& e, const EvalContext& ctx);

/// Collects the distinct signal names referenced via V(...), in first-use
/// order.
std::vector<std::string> collectSignals(const ExprNode& e);

/// Deep copy.
ExprPtr cloneExpr(const ExprNode& e);

}  // namespace ahfic::ahdl
