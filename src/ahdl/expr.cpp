#include "ahdl/expr.h"

#include <cctype>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace ahfic::ahdl {

namespace {

class ExprParser {
 public:
  ExprParser(const std::string& text, size_t& pos)
      : text_(text), pos_(pos) {}

  ExprPtr parse() { return parseSum(); }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError("expression: " + msg + " near '" +
                     text_.substr(pos_, 12) + "'");
  }

  ExprPtr parseSum() {
    ExprPtr lhs = parseTerm();
    while (true) {
      const char c = peek();
      if (c != '+' && c != '-') return lhs;
      ++pos_;
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kBinary;
      node->op = c;
      node->args.push_back(std::move(lhs));
      node->args.push_back(parseTerm());
      lhs = std::move(node);
    }
  }

  ExprPtr parseTerm() {
    ExprPtr lhs = parseFactor();
    while (true) {
      const char c = peek();
      if (c != '*' && c != '/') return lhs;
      ++pos_;
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kBinary;
      node->op = c;
      node->args.push_back(std::move(lhs));
      node->args.push_back(parseFactor());
      lhs = std::move(node);
    }
  }

  ExprPtr parseFactor() {
    ExprPtr base = parseUnary();
    if (peek() == '^') {
      ++pos_;
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kBinary;
      node->op = '^';
      node->args.push_back(std::move(base));
      node->args.push_back(parseFactor());  // right associative
      return node;
    }
    return base;
  }

  ExprPtr parseUnary() {
    const char c = peek();
    if (c == '-' || c == '+') {
      ++pos_;
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kUnary;
      node->op = c;
      node->args.push_back(parseUnary());
      return node;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const char c = peek();
    if (c == '(') {
      ++pos_;
      ExprPtr e = parseSum();
      if (!consume(')')) fail("expected ')'");
      return e;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.')
      return parseNumber();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
      return parseNameOrCall();
    fail("expected a value");
  }

  ExprPtr parseNumber() {
    skipWs();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      // 1e-9 / 2E+6 exponents: allow a sign right after e/E if digits
      // follow.
      if ((text_[pos_] == 'e' || text_[pos_] == 'E') &&
          pos_ + 1 < text_.size() &&
          (text_[pos_ + 1] == '+' || text_[pos_ + 1] == '-')) {
        pos_ += 2;
        continue;
      }
      ++pos_;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    const auto v = util::parseSpiceNumber(tok);
    if (!v) fail("bad number '" + tok + "'");
    auto node = std::make_unique<ExprNode>();
    node->kind = ExprNode::Kind::kNumber;
    node->number = *v;
    return node;
  }

  ExprPtr parseNameOrCall() {
    skipWs();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_'))
      ++pos_;
    const std::string name = text_.substr(start, pos_ - start);

    if (peek() == '(') {
      ++pos_;
      if (name == "V" || name == "v") {
        // Signal reference V(name).
        skipWs();
        const size_t s0 = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_'))
          ++pos_;
        const std::string sig = text_.substr(s0, pos_ - s0);
        if (sig.empty()) fail("V() needs a signal name");
        if (!consume(')')) fail("expected ')' after V(...)");
        auto node = std::make_unique<ExprNode>();
        node->kind = ExprNode::Kind::kSignal;
        node->name = sig;
        return node;
      }
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kCall;
      node->name = name;
      if (peek() != ')') {
        node->args.push_back(parseSum());
        while (consume(',')) node->args.push_back(parseSum());
      }
      if (!consume(')')) fail("expected ')' after call arguments");
      return node;
    }

    auto node = std::make_unique<ExprNode>();
    node->kind = ExprNode::Kind::kVar;
    node->name = name;
    return node;
  }

  const std::string& text_;
  size_t& pos_;
};

double callFunction(const std::string& name, const std::vector<double>& a) {
  auto need = [&](size_t n) {
    if (a.size() != n)
      throw Error("function '" + name + "' expects " + std::to_string(n) +
                  " argument(s), got " + std::to_string(a.size()));
  };
  if (name == "sin") { need(1); return std::sin(a[0]); }
  if (name == "cos") { need(1); return std::cos(a[0]); }
  if (name == "tan") { need(1); return std::tan(a[0]); }
  if (name == "exp") { need(1); return std::exp(a[0]); }
  if (name == "log") { need(1); return std::log(a[0]); }
  if (name == "sqrt") { need(1); return std::sqrt(a[0]); }
  if (name == "abs") { need(1); return std::fabs(a[0]); }
  if (name == "tanh") { need(1); return std::tanh(a[0]); }
  if (name == "atan") { need(1); return std::atan(a[0]); }
  if (name == "min") { need(2); return std::min(a[0], a[1]); }
  if (name == "max") { need(2); return std::max(a[0], a[1]); }
  if (name == "pow") { need(2); return std::pow(a[0], a[1]); }
  if (name == "atan2") { need(2); return std::atan2(a[0], a[1]); }
  throw Error("unknown function '" + name + "'");
}

void collectSignalsInto(const ExprNode& e, std::vector<std::string>& out) {
  if (e.kind == ExprNode::Kind::kSignal) {
    for (const auto& s : out)
      if (s == e.name) return;
    out.push_back(e.name);
    return;
  }
  for (const auto& a : e.args) collectSignalsInto(*a, out);
}

}  // namespace

ExprPtr parseExpression(const std::string& text, size_t& pos) {
  ExprParser p(text, pos);
  return p.parse();
}

ExprPtr parseExpression(const std::string& text) {
  size_t pos = 0;
  ExprPtr e = parseExpression(text, pos);
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])))
    ++pos;
  if (pos != text.size())
    throw ParseError("expression: trailing characters '" +
                     text.substr(pos) + "'");
  return e;
}

double evalExpr(const ExprNode& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprNode::Kind::kNumber:
      return e.number;
    case ExprNode::Kind::kVar: {
      if (e.name == "t") return ctx.t;
      if (e.name == "pi") return 3.14159265358979323846;
      if (ctx.params != nullptr) {
        auto it = ctx.params->find(e.name);
        if (it != ctx.params->end()) return it->second;
      }
      throw Error("unknown identifier '" + e.name + "' in expression");
    }
    case ExprNode::Kind::kSignal: {
      if (!ctx.signalValue)
        throw Error("signal reference V(" + e.name +
                    ") outside a simulation context");
      return ctx.signalValue(e.name);
    }
    case ExprNode::Kind::kUnary: {
      const double v = evalExpr(*e.args[0], ctx);
      return e.op == '-' ? -v : v;
    }
    case ExprNode::Kind::kBinary: {
      const double a = evalExpr(*e.args[0], ctx);
      const double b = evalExpr(*e.args[1], ctx);
      switch (e.op) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/': return a / b;
        case '^': return std::pow(a, b);
      }
      throw Error("bad binary operator");
    }
    case ExprNode::Kind::kCall: {
      std::vector<double> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) args.push_back(evalExpr(*a, ctx));
      return callFunction(e.name, args);
    }
  }
  throw Error("bad expression node");
}

std::vector<std::string> collectSignals(const ExprNode& e) {
  std::vector<std::string> out;
  collectSignalsInto(e, out);
  return out;
}

ExprPtr cloneExpr(const ExprNode& e) {
  auto n = std::make_unique<ExprNode>();
  n->kind = e.kind;
  n->number = e.number;
  n->name = e.name;
  n->op = e.op;
  for (const auto& a : e.args) n->args.push_back(cloneExpr(*a));
  return n;
}

}  // namespace ahfic::ahdl
