#include "ahdl/lang.h"

#include <cctype>

#include "ahdl/blocks.h"
#include "util/error.h"
#include "util/strings.h"

namespace ahfic::ahdl {

SimResult AhdlNetlist::run() {
  if (!runSpec.has_value())
    throw Error("AhdlNetlist::run: netlist has no 'run' statement");
  return system.run(runSpec->tstop, runSpec->sampleRate,
                    runSpec->recordFrom);
}

ExprBlock::ExprBlock(std::string name, ExprPtr expr,
                     std::vector<std::string> inputs,
                     std::map<std::string, double> params)
    : Block(std::move(name), static_cast<int>(inputs.size()), 1),
      expr_(std::move(expr)),
      inputs_(std::move(inputs)),
      params_(std::move(params)) {}

void ExprBlock::step(std::span<const double> in, std::span<double> out,
                     double t) {
  EvalContext ctx;
  ctx.t = t;
  ctx.params = &params_;
  ctx.signalValue = [&](const std::string& sig) -> double {
    for (size_t i = 0; i < inputs_.size(); ++i)
      if (inputs_[i] == sig) return in[i];
    throw Error("ExprBlock '" + name() + "': unbound signal '" + sig + "'");
  };
  out[0] = evalExpr(*expr_, ctx);
}

namespace {

/// One `V(port) <- expr` assignment inside a module body.
struct Assignment {
  std::string targetPort;
  ExprPtr expr;
};

/// A user module definition.
struct ModuleDef {
  std::string name;
  std::vector<std::string> ports;
  std::map<std::string, double> paramDefaults;
  std::vector<Assignment> assignments;
};

class AhdlParser {
 public:
  explicit AhdlParser(const std::string& text) : text_(stripComments(text)) {}

  AhdlNetlist parse() {
    AhdlNetlist out;
    while (!atEnd()) {
      const std::string kw = peekWord();
      if (kw.empty()) break;
      if (kw == "module")
        parseModule();
      else if (kw == "signal")
        parseSignal(out);
      else if (kw == "parameter")
        parseGlobalParameter();
      else if (kw == "instance")
        parseInstance(out);
      else if (kw == "probe")
        parseProbe(out);
      else if (kw == "run")
        parseRun(out);
      else
        fail("unexpected keyword '" + kw + "'");
    }
    return out;
  }

 private:
  static std::string stripComments(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    size_t i = 0;
    while (i < text.size()) {
      if (text[i] == '#' ||
          (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/')) {
        while (i < text.size() && text[i] != '\n') ++i;
      } else {
        out += text[i++];
      }
    }
    return out;
  }

  int lineAt(size_t pos) const {
    int line = 1;
    for (size_t i = 0; i < pos && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    return line;
  }

  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError(msg, lineAt(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool atEnd() {
    skipWs();
    return pos_ >= text_.size();
  }

  char peek() {
    skipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string peekWord() {
    skipWs();
    size_t p = pos_;
    std::string w;
    while (p < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[p])) ||
            text_[p] == '_'))
      w += text_[p++];
    return w;
  }

  std::string readWord() {
    skipWs();
    std::string w;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_'))
      w += text_[pos_++];
    if (w.empty()) fail("expected an identifier");
    return w;
  }

  double readConstExpr() {
    ExprPtr e = parseExpression(text_, pos_);
    EvalContext ctx;
    ctx.params = &globals_;
    return evalExpr(*e, ctx);
  }

  // ---- statements ----

  void parseModule() {
    readWord();  // 'module'
    ModuleDef def;
    def.name = readWord();
    expect('(');
    if (peek() != ')') {
      def.ports.push_back(readWord());
      while (consume(',')) def.ports.push_back(readWord());
    }
    expect(')');
    expect('{');
    while (peek() != '}') {
      const std::string kw = peekWord();
      if (kw == "parameter") {
        readWord();
        const std::string type = readWord();
        if (type != "real") fail("only 'parameter real' is supported");
        const std::string pname = readWord();
        double dflt = 0.0;
        if (consume('=')) dflt = readConstExpr();
        expect(';');
        def.paramDefaults[pname] = dflt;
      } else if (kw == "analog") {
        readWord();
        expect('{');
        while (peek() != '}') {
          // V(port) <- expr ;
          const std::string v = readWord();
          if (v != "V" && v != "v") fail("expected V(port) assignment");
          expect('(');
          Assignment a;
          a.targetPort = readWord();
          expect(')');
          expect('<');
          expect('-');
          a.expr = parseExpression(text_, pos_);
          expect(';');
          def.assignments.push_back(std::move(a));
        }
        expect('}');
      } else {
        fail("expected 'parameter' or 'analog' in module body");
      }
    }
    expect('}');
    if (modules_.count(def.name)) fail("duplicate module '" + def.name + "'");
    modules_[def.name] = std::move(def);
  }

  void parseSignal(AhdlNetlist& out) {
    readWord();  // 'signal'
    out.system.signal(readWord());
    while (consume(',')) out.system.signal(readWord());
    expect(';');
  }

  void parseGlobalParameter() {
    readWord();  // 'parameter'
    const std::string type = readWord();
    if (type != "real") fail("only 'parameter real' is supported");
    const std::string name = readWord();
    expect('=');
    globals_[name] = readConstExpr();
    expect(';');
  }

  void parseProbe(AhdlNetlist& out) {
    readWord();  // 'probe'
    auto add = [&](const std::string& s) {
      out.probes.push_back(s);
      out.system.probe(s);
    };
    add(readWord());
    while (consume(',')) add(readWord());
    expect(';');
  }

  void parseRun(AhdlNetlist& out) {
    readWord();  // 'run'
    RunSpec spec;
    bool haveTstop = false, haveFs = false;
    do {
      const std::string key = readWord();
      expect('=');
      const double v = readConstExpr();
      if (key == "tstop") {
        spec.tstop = v;
        haveTstop = true;
      } else if (key == "fs") {
        spec.sampleRate = v;
        haveFs = true;
      } else if (key == "record_from") {
        spec.recordFrom = v;
      } else {
        fail("unknown run option '" + key + "'");
      }
    } while (consume(','));
    expect(';');
    if (!haveTstop || !haveFs) fail("run needs tstop and fs");
    out.runSpec = spec;
  }

  void parseInstance(AhdlNetlist& out) {
    readWord();  // 'instance'
    const std::string instName = readWord();
    expect('=');
    const std::string typeName = readWord();
    // Named arguments.
    std::map<std::string, double> args;
    expect('(');
    if (peek() != ')') {
      do {
        const std::string key = readWord();
        expect('=');
        args[key] = readConstExpr();
      } while (consume(','));
    }
    expect(')');
    // Port connections.
    std::vector<std::string> conns;
    expect('(');
    if (peek() != ')') {
      conns.push_back(readWord());
      while (consume(',')) conns.push_back(readWord());
    }
    expect(')');
    expect(';');

    auto it = modules_.find(typeName);
    if (it != modules_.end())
      elaborateModule(out, instName, it->second, args, conns);
    else
      elaborateBuiltin(out, instName, typeName, args, conns);
  }

  // ---- elaboration ----

  void elaborateModule(AhdlNetlist& out, const std::string& instName,
                       const ModuleDef& def,
                       const std::map<std::string, double>& args,
                       const std::vector<std::string>& conns) {
    if (conns.size() != def.ports.size())
      fail("instance '" + instName + "': module '" + def.name + "' has " +
           std::to_string(def.ports.size()) + " ports, got " +
           std::to_string(conns.size()));
    std::map<std::string, std::string> portMap;
    for (size_t i = 0; i < conns.size(); ++i)
      portMap[def.ports[i]] = conns[i];

    std::map<std::string, double> params = def.paramDefaults;
    for (const auto& [k, v] : args) {
      if (!params.count(k))
        fail("instance '" + instName + "': module '" + def.name +
             "' has no parameter '" + k + "'");
      params[k] = v;
    }
    // Globals are visible inside module expressions unless shadowed.
    for (const auto& [k, v] : globals_)
      params.emplace(k, v);

    int idx = 0;
    for (const auto& a : def.assignments) {
      auto target = portMap.find(a.targetPort);
      if (target == portMap.end())
        fail("module '" + def.name + "': assignment to unknown port '" +
             a.targetPort + "'");
      // Map referenced ports to connected signals.
      std::vector<std::string> refPorts = collectSignals(*a.expr);
      std::vector<std::string> inputSignals;
      ExprPtr expr = cloneExpr(*a.expr);
      remapSignals(*expr, portMap);
      for (const auto& rp : refPorts) {
        auto pm = portMap.find(rp);
        if (pm == portMap.end())
          fail("module '" + def.name + "': V(" + rp +
               ") does not name a port");
        inputSignals.push_back(pm->second);
      }
      out.system.addBlock(
          std::make_unique<ExprBlock>(
              instName + "." + std::to_string(idx++), std::move(expr),
              inputSignals, params),
          inputSignals, {target->second});
    }
  }

  static void remapSignals(ExprNode& e,
                           const std::map<std::string, std::string>& map) {
    if (e.kind == ExprNode::Kind::kSignal) {
      auto it = map.find(e.name);
      if (it != map.end()) e.name = it->second;
      return;
    }
    for (auto& a : e.args) remapSignals(*a, map);
  }

  void elaborateBuiltin(AhdlNetlist& out, const std::string& instName,
                        const std::string& type,
                        const std::map<std::string, double>& args,
                        const std::vector<std::string>& conns) {
    auto arg = [&](const char* key, double dflt) {
      auto it = args.find(key);
      return it == args.end() ? dflt : it->second;
    };
    auto need = [&](const char* key) {
      auto it = args.find(key);
      if (it == args.end())
        fail("builtin '" + type + "': missing argument '" + key + "'");
      return it->second;
    };
    auto ports = [&](size_t n) {
      if (conns.size() != n)
        fail("builtin '" + type + "' expects " + std::to_string(n) +
             " connections, got " + std::to_string(conns.size()));
    };
    auto& sys = out.system;

    if (type == "sine") {
      ports(1);
      sys.add<SineSource>({}, {conns[0]}, instName, need("freq"),
                          need("amp"), arg("phase", 0.0),
                          arg("offset", 0.0));
    } else if (type == "dc") {
      ports(1);
      sys.add<DcSource>({}, {conns[0]}, instName, need("value"));
    } else if (type == "noise") {
      ports(1);
      sys.add<NoiseSource>({}, {conns[0]}, instName, need("sigma"),
                           static_cast<std::uint64_t>(arg("seed", 1.0)));
    } else if (type == "amp") {
      ports(2);
      sys.add<Amplifier>({conns[0]}, {conns[1]}, instName, need("gain"),
                         arg("vsat", 0.0));
    } else if (type == "mixer") {
      ports(3);
      sys.add<Mixer>({conns[0], conns[1]}, {conns[2]}, instName,
                     arg("gain", 1.0));
    } else if (type == "adder2") {
      ports(3);
      sys.add<Adder>({conns[0], conns[1]}, {conns[2]}, instName, 2);
    } else if (type == "adder3") {
      ports(4);
      sys.add<Adder>({conns[0], conns[1], conns[2]}, {conns[3]}, instName,
                     3);
    } else if (type == "subtract") {
      ports(3);
      sys.add<Adder>({conns[0], conns[1]}, {conns[2]}, instName,
                     std::vector<double>{1.0, -1.0});
    } else if (type == "quadlo") {
      ports(2);
      sys.add<QuadratureOscillator>(
          {}, {conns[0], conns[1]}, instName, need("freq"), arg("amp", 1.0),
          arg("phase_error", 0.0), arg("gain_imbalance", 0.0));
    } else if (type == "phase90") {
      ports(2);
      sys.add<PhaseShifter90>({conns[0]}, {conns[1]}, instName, need("fc"),
                              arg("error", 0.0));
    } else if (type == "lowpass" || type == "highpass") {
      ports(2);
      sys.add<FilterBlock>({conns[0]}, {conns[1]}, instName,
                           type == "lowpass" ? FilterBlock::Kind::kLowpass
                                             : FilterBlock::Kind::kHighpass,
                           static_cast<int>(need("order")), need("fc"));
    } else if (type == "bandpass") {
      ports(2);
      sys.add<FilterBlock>({conns[0]}, {conns[1]}, instName,
                           FilterBlock::Kind::kBandpass,
                           static_cast<int>(need("order")), need("f1"),
                           need("f2"));
    } else if (type == "limiter") {
      ports(2);
      sys.add<Limiter>({conns[0]}, {conns[1]}, instName, need("level"));
    } else if (type == "attenuator") {
      ports(2);
      sys.add<AttenuatorDb>({conns[0]}, {conns[1]}, instName, need("db"));
    } else if (type == "vco") {
      ports(3);
      sys.add<Vco>({conns[0]}, {conns[1], conns[2]}, instName,
                   need("freq"), arg("kvco", 0.0), arg("amp", 1.0));
    } else if (type == "integrator") {
      ports(2);
      sys.add<IntegratorBlock>({conns[0]}, {conns[1]}, instName,
                               arg("gain", 1.0), arg("initial", 0.0));
    } else if (type == "comparator") {
      ports(2);
      sys.add<Comparator>({conns[0]}, {conns[1]}, instName,
                          arg("threshold", 0.0), arg("hyst", 0.0),
                          arg("low", 0.0), arg("high", 1.0));
    } else if (type == "samplehold") {
      ports(3);
      sys.add<SampleHold>({conns[0], conns[1]}, {conns[2]}, instName);
    } else if (type == "divider") {
      ports(2);
      sys.add<FrequencyDivider>({conns[0]}, {conns[1]}, instName,
                                static_cast<int>(need("n")));
    } else {
      fail("unknown module or builtin '" + type + "'");
    }
  }

  std::string text_;
  size_t pos_ = 0;
  std::map<std::string, ModuleDef> modules_;
  std::map<std::string, double> globals_;
};

}  // namespace

AhdlNetlist parseAhdl(const std::string& text) {
  AhdlParser parser(text);
  return parser.parse();
}

}  // namespace ahfic::ahdl
