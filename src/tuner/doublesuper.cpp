#include "tuner/doublesuper.h"

#include "ahdl/blocks.h"

namespace ahfic::tuner {

using namespace ahfic::ahdl;

namespace {

/// Adds the common front half: composite RF source, up-conversion mixer
/// and 1st IF band-pass filter. Returns the name of the 1st IF signal.
std::string buildFrontEnd(System& sys, const FrequencyPlan& plan,
                          const TunerStimulus& stim) {
  plan.validate();

  sys.add<SineSource>({}, {"rf_tuned"}, "src_tuned", stim.rfTuned,
                      stim.tunedAmplitude);
  if (stim.imageAmplitude > 0.0) {
    sys.add<SineSource>({}, {"rf_image"}, "src_image",
                        plan.rfImage(stim.rfTuned), stim.imageAmplitude);
    sys.add<Adder>({"rf_tuned", "rf_image"}, {"rf_in"}, "rf_sum", 2);
  } else {
    sys.add<Amplifier>({"rf_tuned"}, {"rf_in"}, "rf_buf", 1.0);
  }

  // Up-conversion: 1st mixer with the PLL-controlled LO (Fig. 2 "PLL").
  sys.add<SineSource>({}, {"lo_up"}, "lo_up_src", plan.upLo(stim.rfTuned),
                      1.0);
  sys.add<Mixer>({"rf_in", "lo_up"}, {"mix1_raw"}, "mix1", 2.0);

  // 1st IF band-pass ("BPF" in Fig. 2). Wide enough that both the wanted
  // 1st IF and the 2nd-conversion image pass — the point of Fig. 3.
  sys.add<FilterBlock>({"mix1_raw"}, {"if1"}, "bpf1",
                       FilterBlock::Kind::kBandpass, 3, plan.if1 * 0.85,
                       plan.if1 * 1.15);
  return "if1";
}

}  // namespace

double recommendedSampleRate(const FrequencyPlan& plan,
                             const TunerStimulus& stim) {
  // Highest product: Fup + RF (sum term of the up-converter).
  const double fMax = plan.upLo(stim.rfTuned) + stim.rfTuned;
  return 3.2 * fMax;
}

TunerSignals buildConventionalTuner(ahdl::System& sys,
                                    const FrequencyPlan& plan,
                                    const TunerStimulus& stim) {
  const std::string if1 = buildFrontEnd(sys, plan, stim);

  // 2nd conversion: plain mixer (no image protection).
  sys.add<SineSource>({}, {"lo_down"}, "lo_down_src", plan.downLo(), 1.0);
  sys.add<Mixer>({if1, "lo_down"}, {"mix2_raw"}, "mix2", 2.0);
  // 2nd IF low-pass removes the sum product.
  sys.add<FilterBlock>({"mix2_raw"}, {"if2"}, "lpf2",
                       FilterBlock::Kind::kLowpass, 3, plan.if2 * 4.0);

  return TunerSignals{"rf_in", if1, "if2"};
}

TunerSignals buildImageRejectTuner(ahdl::System& sys,
                                   const FrequencyPlan& plan,
                                   const TunerStimulus& stim,
                                   const ImageRejectImpairments& imp) {
  const std::string if1 = buildFrontEnd(sys, plan, stim);

  // Quadrature 2nd LO (the paper's VCO with two outputs 90 degrees apart,
  // carrying the quadrature phase error).
  sys.add<QuadratureOscillator>({}, {"lo_i", "lo_q"}, "vco", plan.downLo(),
                                1.0, imp.loPhaseErrorDeg, 0.0);

  // Two down-conversion paths; the gain imbalance sits in the Q path.
  sys.add<Mixer>({if1, "lo_i"}, {"mixi_raw"}, "mix_i", 2.0);
  sys.add<Mixer>({if1, "lo_q"}, {"mixq_raw"}, "mix_q",
                 2.0 * (1.0 + imp.gainImbalance));
  // Matched 2nd-IF low-pass filters.
  sys.add<FilterBlock>({"mixi_raw"}, {"path_i"}, "lpf_i",
                       FilterBlock::Kind::kLowpass, 3, plan.if2 * 4.0);
  sys.add<FilterBlock>({"mixq_raw"}, {"path_q"}, "lpf_q",
                       FilterBlock::Kind::kLowpass, 3, plan.if2 * 4.0);

  // The I path passes through the 2nd-IF 90-degree phase shifter (with
  // its own error), then the paths combine. With the wanted channel above
  // the LO the combination is I_shifted - Q: the wanted tones add in
  // phase while the image's reversed phase makes it cancel.
  sys.add<PhaseShifter90>({"path_i"}, {"path_i_shifted"}, "shift90",
                          plan.if2, imp.ifPhaseErrorDeg);
  sys.add<Adder>({"path_i_shifted", "path_q"}, {"if2"}, "combine",
                 std::vector<double>{1.0, -1.0});

  return TunerSignals{"rf_in", if1, "if2"};
}

}  // namespace ahfic::tuner
