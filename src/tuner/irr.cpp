#include "tuner/irr.h"

#include <cmath>

#include "util/error.h"
#include "util/fft.h"
#include "util/numeric.h"
#include "util/restrict.h"
#include "util/units.h"

namespace ahfic::tuner {

double analyticImageRejectionDb(double phaseErrorDeg, double gainImbalance) {
  const double a = 1.0 + gainImbalance;
  const double phi = phaseErrorDeg * util::constants::kPi / 180.0;
  const double num = 1.0 + 2.0 * a * std::cos(phi) + a * a;
  const double den = 1.0 - 2.0 * a * std::cos(phi) + a * a;
  if (den <= 0.0) return 200.0;  // mathematically perfect rejection
  return 10.0 * std::log10(num / den);
}

namespace {

/// Runs the Fig. 4 chain with the given stimulus and returns the 2nd-IF
/// tone amplitude.
double secondIfAmplitude(const ImageRejectImpairments& imp,
                         const IrrSimOptions& opts, bool imageOnly) {
  ahdl::System sys;
  TunerStimulus stim;
  stim.rfTuned = opts.rfTuned;
  // Both runs keep both sources (identical topology); the inactive tone
  // gets a vanishing amplitude instead of being removed.
  stim.tunedAmplitude = imageOnly ? 1e-30 : 1.0;
  stim.imageAmplitude = imageOnly ? 1.0 : 1e-30;

  const auto signals = buildImageRejectTuner(sys, opts.plan, stim, imp);
  sys.probe(signals.secondIf);

  const double fs = recommendedSampleRate(opts.plan, stim);
  const auto res = sys.run(opts.settleSeconds + opts.measureSeconds, fs,
                           opts.settleSeconds);
  return util::toneAmplitude(res.trace(signals.secondIf), fs,
                             opts.plan.if2);
}

}  // namespace

double simulateImageRejectionDb(const ImageRejectImpairments& imp,
                                const IrrSimOptions& opts) {
  const double wanted = secondIfAmplitude(imp, opts, /*imageOnly=*/false);
  const double image = secondIfAmplitude(imp, opts, /*imageOnly=*/true);
  if (wanted <= 0.0) throw Error("simulateImageRejectionDb: no output");
  if (image <= 0.0) return 200.0;
  return 20.0 * std::log10(wanted / image);
}

IrrYieldResult irrYield(double sigmaPhaseDeg, double sigmaGain,
                        double targetDb, int samples, std::uint64_t seed,
                        IrrYieldScratch* scratch) {
  if (samples < 1) throw Error("irrYield: need at least one sample");
  IrrYieldScratch local;
  IrrYieldScratch& sc = scratch != nullptr ? *scratch : local;
  const size_t n = static_cast<size_t>(samples);
  sc.phi.resize(n);
  sc.gain.resize(n);
  sc.irr.resize(n);

  // Draw phase: the phi-then-gain interleave per sample is load-bearing
  // (the Rng's Box-Muller spare caching makes draw order part of the
  // result), so the draws stay in the scalar loop's exact sequence.
  util::Rng rng(seed);
  for (size_t k = 0; k < n; ++k) {
    sc.phi[k] = rng.normal(0.0, sigmaPhaseDeg);
    sc.gain[k] = rng.normal(0.0, sigmaGain);
  }

  // Evaluate phase: pure per-sample math over the whole block.
  {
    const double* AHFIC_RESTRICT phi = sc.phi.data();
    const double* AHFIC_RESTRICT gain = sc.gain.data();
    double* AHFIC_RESTRICT irr = sc.irr.data();
    for (size_t k = 0; k < n; ++k)
      irr[k] = analyticImageRejectionDb(phi[k], gain[k]);
  }

  IrrYieldResult r;
  r.samples = samples;
  r.worstIrrDb = 1e300;
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    sum += sc.irr[k];
    r.worstIrrDb = std::min(r.worstIrrDb, sc.irr[k]);
    if (sc.irr[k] >= targetDb) ++r.passing;
  }
  r.meanIrrDb = sum / samples;
  return r;
}

IrrYieldResult mergeIrrYield(const IrrYieldResult& a,
                             const IrrYieldResult& b) {
  if (a.samples == 0) return b;
  if (b.samples == 0) return a;
  IrrYieldResult r;
  r.samples = a.samples + b.samples;
  r.passing = a.passing + b.passing;
  r.meanIrrDb = (a.meanIrrDb * a.samples + b.meanIrrDb * b.samples) /
                static_cast<double>(r.samples);
  r.worstIrrDb = std::min(a.worstIrrDb, b.worstIrrDb);
  return r;
}

}  // namespace ahfic::tuner
