#include "tuner/distortion.h"

#include <cmath>

#include "ahdl/blocks.h"
#include "util/error.h"
#include "util/fft.h"
#include "util/numeric.h"

namespace ahfic::tuner {

double TwoToneResult::im3Dbc() const {
  const double worst = std::max(im3Low, im3High);
  if (fundamental <= 0.0 || worst <= 0.0) return -300.0;
  return 20.0 * std::log10(worst / fundamental);
}

double TwoToneResult::oip3Amplitude() const {
  const double worst = std::max(im3Low, im3High);
  if (fundamental <= 0.0 || worst <= 0.0) return 0.0;
  // On log axes the fundamental rises 1:1 and IM3 3:1; they intersect
  // half the current spacing above the fundamental (in dB):
  // OIP3_dB = Pfund_dB + (Pfund_dB - Pim3_dB)/2.
  return fundamental * std::sqrt(fundamental / worst);
}

TwoToneResult twoToneTest(const DutBuilder& dut, const TwoToneSpec& spec) {
  if (!dut) throw Error("twoToneTest: null DUT builder");
  if (spec.f1 <= 0.0 || spec.f2 <= spec.f1)
    throw Error("twoToneTest: need 0 < f1 < f2");

  ahdl::System sys;
  sys.add<ahdl::SineSource>({}, {"t1"}, "tone1", spec.f1,
                            spec.inputAmplitude);
  sys.add<ahdl::SineSource>({}, {"t2"}, "tone2", spec.f2,
                            spec.inputAmplitude);
  sys.add<ahdl::Adder>({"t1", "t2"}, {"in"}, "sum", 2);
  dut(sys, "in", "out");
  sys.probe("out");

  const auto res = sys.run(spec.settleSeconds + spec.measureSeconds,
                           spec.sampleRate, spec.settleSeconds);
  const auto& y = res.trace("out");

  TwoToneResult r;
  r.inputAmplitude = spec.inputAmplitude;
  r.fundamental = util::toneAmplitude(y, spec.sampleRate, spec.f1);
  r.im3Low =
      util::toneAmplitude(y, spec.sampleRate, 2.0 * spec.f1 - spec.f2);
  r.im3High =
      util::toneAmplitude(y, spec.sampleRate, 2.0 * spec.f2 - spec.f1);
  return r;
}

TwoToneResult twoToneTestAmplifier(double gain, double vsat,
                                   const TwoToneSpec& spec) {
  return twoToneTest(
      [&](ahdl::System& sys, const std::string& in, const std::string& out) {
        sys.add<ahdl::Amplifier>({in}, {out}, "dut", gain, vsat);
      },
      spec);
}

double tanhIm3Theory(double gain, double vsat, double inputAmplitude) {
  if (vsat <= 0.0) return 0.0;
  const double a3 = gain * gain * gain / (3.0 * vsat * vsat);
  return 0.75 * a3 * std::pow(inputAmplitude, 3.0);
}

}  // namespace ahfic::tuner
