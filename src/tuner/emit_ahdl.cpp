#include "tuner/emit_ahdl.h"

#include <sstream>

namespace ahfic::tuner {

std::string emitImageRejectAhdl(const FrequencyPlan& plan,
                                const ImageRejectImpairments& imp,
                                const AhdlEmitOptions& options) {
  plan.validate();
  const double fWanted = plan.downLo() + plan.if2;   // above the LO
  const double fImage = plan.downLo() - plan.if2;    // below the LO

  std::ostringstream os;
  os.precision(12);
  os << "// Fig. 4 image-rejection second conversion (generated)\n";
  os << "signal rfin, wanted, image;\n";
  os << "instance sw = sine(freq=" << fWanted << ", amp="
     << (options.imageOnly ? 1e-30 : 1.0) << ") (wanted);\n";
  os << "instance si = sine(freq=" << fImage << ", amp="
     << (options.imageOnly ? 1.0 : 1e-30) << ") (image);\n";
  os << "instance sum = adder2() (wanted, image, rfin);\n\n";

  os << "signal loi, loq, mi, mq, pi2, pq, pqb, shifted, ifout;\n";
  os << "instance vco = quadlo(freq=" << plan.downLo()
     << ", amp=1, phase_error=" << imp.loPhaseErrorDeg << ") (loi, loq);\n";
  os << "instance mx1 = mixer(gain=2) (rfin, loi, mi);\n";
  os << "instance mx2 = mixer(gain=" << 2.0 * (1.0 + imp.gainImbalance)
     << ") (rfin, loq, mq);\n";
  os << "instance lp1 = lowpass(order=3, fc=" << plan.if2 * 4.0
     << ") (mi, pi2);\n";
  os << "instance lp2 = lowpass(order=3, fc=" << plan.if2 * 4.0
     << ") (mq, pq);\n";
  os << "instance ps = phase90(fc=" << plan.if2 << ", error="
     << imp.ifPhaseErrorDeg << ") (pi2, shifted);\n";
  os << "instance cmb = subtract() (shifted, pq, ifout);\n\n";

  os << "probe ifout;\n";
  os << "run tstop=" << options.tstop << ", fs=" << options.sampleRate
     << ", record_from=" << options.recordFrom << ";\n";
  return os.str();
}

}  // namespace ahfic::tuner
