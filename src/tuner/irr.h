#pragma once
// Image-rejection-ratio analysis — the quantity the paper's Fig. 5 plots
// against phase error with gain balance as a parameter.
//
// Two routes to the same number:
//  * analytic: the classic phasor formula for a quadrature image-reject
//    mixer with gain imbalance g and total quadrature phase error phi:
//        IRR = (1 + 2(1+g)cos(phi) + (1+g)^2) /
//              (1 - 2(1+g)cos(phi) + (1+g)^2)        [power ratio]
//  * simulated: run the Fig. 4 behavioural tuner twice (wanted-only and
//    image-only stimulus) and compare the 2nd-IF tone amplitudes — this is
//    the experiment the paper ran in its AHDL simulator.

#include <cstdint>
#include <vector>

#include "tuner/doublesuper.h"

namespace ahfic::tuner {

/// Analytic IRR in dB for a total quadrature phase error (degrees) and a
/// relative gain imbalance (0.01 = 1%).
double analyticImageRejectionDb(double phaseErrorDeg, double gainImbalance);

/// Options for the simulated measurement.
struct IrrSimOptions {
  FrequencyPlan plan;
  double rfTuned = 500e6;
  double measureSeconds = 1.2e-6;   ///< after settling
  double settleSeconds = 0.6e-6;    ///< filter/start-up discard
};

/// Time-domain IRR in dB via two runs of the Fig. 4 chain.
double simulateImageRejectionDb(const ImageRejectImpairments& imp,
                                const IrrSimOptions& opts = {});

/// Monte-Carlo yield of the image-rejection spec under process variation
/// (the paper's Sec. 2: "examine the performance of this system taking IC
/// process variations into account"). Phase error and gain imbalance of
/// the quadrature paths are drawn as zero-mean normals.
struct IrrYieldResult {
  int samples = 0;
  int passing = 0;
  double meanIrrDb = 0.0;
  double worstIrrDb = 0.0;
  double yield() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(passing) / samples;
  }
};

/// Reusable sample buffers for irrYield: callers looping over corners or
/// chunks hand the same scratch back in so the per-call allocations
/// disappear from the inner loop. Default-constructed scratch is valid.
struct IrrYieldScratch {
  std::vector<double> phi, gain, irr;
};

IrrYieldResult irrYield(double sigmaPhaseDeg, double sigmaGain,
                        double targetDb, int samples,
                        std::uint64_t seed = 1,
                        IrrYieldScratch* scratch = nullptr);

/// Combines two partial yield studies (sample-count weighted mean, min of
/// worst cases, summed pass counts). Lets a large study be split into
/// independently-seeded chunks, fanned out by the batch runner, and
/// reduced back — deterministic for a fixed chunking regardless of the
/// execution order.
IrrYieldResult mergeIrrYield(const IrrYieldResult& a,
                             const IrrYieldResult& b);

}  // namespace ahfic::tuner
