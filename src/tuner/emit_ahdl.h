#pragma once
// Emits the Fig. 4 image-rejection down-converter as an AHDL netlist —
// the artefact a circuit designer would check into the cell database's
// behavioural view. Bridges the C++-built tuner models and the textual
// language: the emitted netlist must reproduce the same IRR as the
// programmatic chain (tested in tuner_emit_test).

#include <string>

#include "tuner/doublesuper.h"

namespace ahfic::tuner {

/// Options for the emitted experiment.
struct AhdlEmitOptions {
  /// Which tone drives the chain: the wanted channel or the image.
  bool imageOnly = false;
  double tstop = 1.8e-6;
  double sampleRate = 4e9;
  double recordFrom = 0.6e-6;
};

/// Renders a runnable AHDL netlist of the second conversion of the
/// Fig. 4 tuner (quadrature LO, matched low-pass filters, 90-degree
/// shifter, combiner) with the given impairments, probing the 2nd IF as
/// signal "ifout".
std::string emitImageRejectAhdl(const FrequencyPlan& plan,
                                const ImageRejectImpairments& imp,
                                const AhdlEmitOptions& options = {});

}  // namespace ahfic::tuner
