#pragma once
// Behavioural double-super tuner chains (Figs. 2 and 4), built from ahdl
// blocks. Two variants:
//   * buildConventionalTuner  — Fig. 2: up-convert, band-pass, down-convert
//   * buildImageRejectTuner   — Fig. 4: quadrature down-conversion with a
//     90-degree shifter and combiner; gain/phase impairments exposed
//
// Both return the names of the interesting signals so callers can probe
// them.

#include <string>

#include "ahdl/system.h"
#include "tuner/plan.h"

namespace ahfic::tuner {

/// Input scenario: the tuned channel plus (optionally) its image channel.
struct TunerStimulus {
  double rfTuned = 500e6;       ///< tuned RF carrier [Hz]
  double tunedAmplitude = 1.0;  ///< wanted carrier amplitude
  double imageAmplitude = 0.0;  ///< image-channel carrier amplitude
};

/// Impairments of the image-rejection path — the quantities Fig. 5 sweeps.
struct ImageRejectImpairments {
  double loPhaseErrorDeg = 0.0;   ///< 2nd-LO quadrature phase error
  double ifPhaseErrorDeg = 0.0;   ///< 2nd-IF 90-degree shifter error
  double gainImbalance = 0.0;     ///< relative I/Q path gain error (0.01 = 1%)
};

/// Signal names exposed by the builders.
struct TunerSignals {
  std::string rfInput;    ///< composite RF input
  std::string firstIf;    ///< after the 1st mixer and band-pass
  std::string secondIf;   ///< final 2nd-IF output
};

/// Fig. 2: conventional double-super chain. The second conversion has no
/// image protection beyond the (too-wide) 1st IF band-pass.
TunerSignals buildConventionalTuner(ahdl::System& sys,
                                    const FrequencyPlan& plan,
                                    const TunerStimulus& stim);

/// Fig. 4: double-super chain with an image-rejection second mixer.
TunerSignals buildImageRejectTuner(ahdl::System& sys,
                                   const FrequencyPlan& plan,
                                   const TunerStimulus& stim,
                                   const ImageRejectImpairments& imp);

/// Sample rate adequate for either chain (covers the up-converter sum
/// products with margin).
double recommendedSampleRate(const FrequencyPlan& plan,
                             const TunerStimulus& stim);

}  // namespace ahfic::tuner
