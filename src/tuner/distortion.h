#pragma once
// Distortion analysis — the paper names "distortion, noise and image
// signal" as the CATV tuner's main circuit concerns; this module covers
// the distortion leg with the standard two-tone intermodulation test.
//
// Two closely spaced tones drive the device under test; third-order
// nonlinearity produces products at 2*f1 - f2 and 2*f2 - f1 that fall in
// band. The extrapolated intercept point (IP3) is the headline metric.

#include <functional>
#include <string>

#include "ahdl/system.h"

namespace ahfic::tuner {

/// Two-tone test configuration.
struct TwoToneSpec {
  double f1 = 44e6;          ///< first tone [Hz]
  double f2 = 46e6;          ///< second tone [Hz]
  double inputAmplitude = 0.1;  ///< per-tone input amplitude
  double sampleRate = 2e9;
  double measureSeconds = 4e-6;
  double settleSeconds = 1e-6;
};

/// Measured two-tone response.
struct TwoToneResult {
  double fundamental = 0.0;  ///< output amplitude at f1
  double im3Low = 0.0;       ///< output amplitude at 2*f1 - f2
  double im3High = 0.0;      ///< output amplitude at 2*f2 - f1
  double inputAmplitude = 0.0;

  /// IM3 relative to the carrier [dBc] (negative for a sane DUT).
  double im3Dbc() const;
  /// Output-referred third-order intercept (single-pole extrapolation):
  /// OIP3 = Pout + im3Dbc/2 expressed as an amplitude.
  double oip3Amplitude() const;
};

/// A device under test: installs blocks between `in` and `out`.
using DutBuilder = std::function<void(
    ahdl::System& sys, const std::string& in, const std::string& out)>;

/// Runs the two-tone test on the DUT.
TwoToneResult twoToneTest(const DutBuilder& dut, const TwoToneSpec& spec);

/// Convenience: two-tone test of a tanh-compressive amplifier
/// (gain, vsat as in ahdl::Amplifier).
TwoToneResult twoToneTestAmplifier(double gain, double vsat,
                                   const TwoToneSpec& spec);

/// Small-signal theory for the tanh amplifier
/// y = vsat*tanh(gain*x/vsat) ~ gain*x - gain^3/(3*vsat^2) x^3:
/// each IM3 product has amplitude (3/4)*|a3|*A^3 = gain^3 A^3/(4 vsat^2).
double tanhIm3Theory(double gain, double vsat, double inputAmplitude);

}  // namespace ahfic::tuner
