#pragma once
// CATV double-super tuner frequency plan (the paper's Figs. 2-3).
//
// An RF channel in 90..770 MHz is up-converted to a 1st IF of 1.3 GHz by a
// high-side local oscillator Fup, then down-converted to the 2nd IF of
// 45 MHz by Fdown. The image of the second conversion sits 2 x 45 MHz away
// from the wanted signal at the 1st IF — far too close for the 1st IF
// band-pass filter, which is why Fig. 4 introduces the image-rejection
// mixer.

#include "util/error.h"

namespace ahfic::tuner {

/// Frequency plan with the paper's numbers as defaults. All Hz.
struct FrequencyPlan {
  double rfMin = 90e6;    ///< lowest RF channel
  double rfMax = 770e6;   ///< highest RF channel
  double if1 = 1.3e9;     ///< 1st IF
  double if2 = 45e6;      ///< 2nd IF

  /// Up-converter LO for a tuned RF channel (high-side injection).
  double upLo(double rf) const { return rf + if1; }
  /// Down-converter LO placing the wanted 1st IF above the LO:
  /// if1 - Fdown = if2.
  double downLo() const { return if1 - if2; }
  /// 1st-IF image frequency of the second conversion:
  /// Fdown - image = if2  =>  image = if1 - 2 * if2.
  double if1Image() const { return if1 - 2.0 * if2; }
  /// RF-domain image channel: the RF that up-converts onto if1Image().
  /// With high-side up-conversion (Fup - RF = if1... see below) the image
  /// channel lies 2 * if2 = 90 MHz from the tuned channel.
  double rfImage(double rf) const { return rf + 2.0 * if2; }

  /// Validates the plan invariants; throws ahfic::Error when violated.
  void validate() const {
    if (!(rfMin > 0.0) || rfMax <= rfMin)
      throw Error("FrequencyPlan: bad RF range");
    if (if1 <= rfMax)
      throw Error("FrequencyPlan: 1st IF must sit above the RF band");
    if (!(if2 > 0.0) || if2 >= if1 / 4.0)
      throw Error("FrequencyPlan: 2nd IF must be well below the 1st IF");
  }
};

}  // namespace ahfic::tuner
