#pragma once
// ASCII waveform plotting — the .PLOT of classic SPICE listings. Used by
// the deck runner and the netlist CLI so results are inspectable without
// leaving the terminal.

#include <string>
#include <vector>

namespace ahfic::util {

/// Options for asciiChart.
struct PlotOptions {
  int width = 72;    ///< plot columns (excluding the y-axis labels)
  int height = 18;   ///< plot rows
  char mark = '*';
  std::string xLabel;
  std::string yLabel;
};

/// Renders y(x) as an ASCII chart with min/max axis annotations. `xs`
/// must be non-decreasing and the same length as `ys` (>= 2). Values are
/// binned per column; each column shows the span of samples it covers, so
/// fast waveforms stay visible after decimation.
std::string asciiChart(const std::vector<double>& xs,
                       const std::vector<double>& ys,
                       const PlotOptions& options = {});

/// Two-series overlay ('*' and '+', '#' where they collide).
std::string asciiChart2(const std::vector<double>& xs,
                        const std::vector<double>& y1,
                        const std::vector<double>& y2,
                        const PlotOptions& options = {});

}  // namespace ahfic::util
