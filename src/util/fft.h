#pragma once
// Radix-2 FFT and spectrum utilities.
//
// Used by the tuner spectrum bench (Fig. 3) and by the transient-waveform
// measurement helpers to locate tones. Self-contained: no external DSP
// dependency.

#include <complex>
#include <vector>

namespace ahfic::util {

/// In-place iterative radix-2 Cooley-Tukey FFT.
/// `data.size()` must be a power of two. `inverse` selects the IFFT, which
/// includes the 1/N normalisation.
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Next power of two >= n (n >= 1).
size_t nextPow2(size_t n);

/// Window shapes for spectrum estimation.
enum class Window { kRect, kHann, kBlackman };

/// One bin of a single-sided amplitude spectrum.
struct SpectrumBin {
  double frequency;  ///< Hz
  double amplitude;  ///< linear, window-gain corrected
};

/// Computes the single-sided amplitude spectrum of a real signal sampled at
/// `sampleRate` Hz. The signal is windowed, zero-padded to a power of two,
/// and amplitude-corrected for the window's coherent gain, so a full-scale
/// sine reports its true amplitude at its bin.
std::vector<SpectrumBin> amplitudeSpectrum(const std::vector<double>& signal,
                                           double sampleRate,
                                           Window window = Window::kHann);

/// A spectral peak: local maximum refined by parabolic interpolation.
struct SpectralPeak {
  double frequency;  ///< Hz, interpolated
  double amplitude;  ///< linear, interpolated
};

/// Finds up to `maxPeaks` highest local maxima in `spectrum` that exceed
/// `minAmplitude`, sorted by descending amplitude.
std::vector<SpectralPeak> findPeaks(const std::vector<SpectrumBin>& spectrum,
                                    size_t maxPeaks,
                                    double minAmplitude = 0.0);

/// Amplitude (in the same linear units as SpectrumBin) of the spectrum near
/// `frequency`: the maximum amplitude over bins within +/- `tolerance` Hz.
double amplitudeNear(const std::vector<SpectrumBin>& spectrum,
                     double frequency, double tolerance);

/// Amplitude of the sinusoidal component of `signal` at exactly
/// `frequency`, via Hann-windowed quadrature correlation (a Goertzel-style
/// single-frequency probe that is not restricted to FFT bins). Accurate to
/// well below -60 dBc in the presence of other tones, which the tuner
/// image-rejection measurement needs.
double toneAmplitude(const std::vector<double>& signal, double sampleRate,
                     double frequency);

}  // namespace ahfic::util
