#pragma once
// Small string utilities used by the SPICE and AHDL parsers and the cell
// database. All functions are pure and allocation-conscious.

#include <string>
#include <string_view>
#include <vector>

namespace ahfic::util {

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-case copy.
std::string toLower(std::string_view s);

/// ASCII upper-case copy.
std::string toUpper(std::string_view s);

/// True if `s` starts with `prefix` (case sensitive).
bool startsWith(std::string_view s, std::string_view prefix);

/// True if `s` starts with `prefix`, compared case-insensitively.
bool startsWithNoCase(std::string_view s, std::string_view prefix);

/// Case-insensitive equality.
bool equalsNoCase(std::string_view a, std::string_view b);

/// Splits on any character in `delims`, dropping empty fields.
std::vector<std::string> split(std::string_view s, std::string_view delims);

/// Splits on unquoted whitespace; double-quoted substrings become single
/// fields with the quotes removed. Used for cell-record and deck parsing.
std::vector<std::string> tokenize(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` contains `needle` irrespective of ASCII case.
bool containsNoCase(std::string_view text, std::string_view needle);

/// Replaces every occurrence of `from` with `to` (no overlap re-scan).
std::string replaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

}  // namespace ahfic::util
