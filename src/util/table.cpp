#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace ahfic::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw Error("Table: header must not be empty");
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw Error("Table: row arity " + std::to_string(cells.size()) +
                " != header arity " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emitRow = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emitRow(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emitRow(row);
}

void Table::printCsv(std::ostream& os) const {
  auto quote = [](const std::string& f) {
    if (f.find_first_of(",\"\n") == std::string::npos) return f;
    std::string out = "\"";
    for (char c : f) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::toString() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace ahfic::util
