#include "util/strings.h"

#include <algorithm>
#include <cctype>

namespace ahfic::util {

namespace {
bool isSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::string_view trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && isSpace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && isSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), lower);
  return out;
}

std::string toUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool startsWithNoCase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  return equalsNoCase(s.substr(0, prefix.size()), prefix);
}

bool equalsNoCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (lower(a[i]) != lower(b[i])) return false;
  return true;
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> tokenize(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && isSpace(s[i])) ++i;
    if (i >= s.size()) break;
    if (s[i] == '"') {
      size_t end = s.find('"', i + 1);
      if (end == std::string_view::npos) end = s.size();
      out.emplace_back(s.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      size_t start = i;
      while (i < s.size() && !isSpace(s[i])) ++i;
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool containsNoCase(std::string_view text, std::string_view needle) {
  if (needle.empty()) return true;
  if (text.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= text.size(); ++i)
    if (equalsNoCase(text.substr(i, needle.size()), needle)) return true;
  return false;
}

std::string replaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t i = 0;
  while (i < s.size()) {
    if (i + from.size() <= s.size() && s.substr(i, from.size()) == from) {
      out += to;
      i += from.size();
    } else {
      out += s[i++];
    }
  }
  return out;
}

}  // namespace ahfic::util
