#pragma once
// Error handling primitives shared by every ahfic library.
//
// The libraries throw `ahfic::Error` (or a subclass) for all user-facing
// failure conditions: malformed netlists, non-convergent analyses, bad
// parameter values. Internal logic errors use assertions.

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace ahfic {

/// Base exception for all ahfic libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when parsing a textual input (SPICE deck, AHDL netlist, cell
/// record) fails. Carries a human-readable location.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("parse error at line " + std::to_string(line) + ": " + what),
        line_(line) {}
  explicit ParseError(const std::string& what) : Error(what), line_(-1) {}

  /// 1-based source line of the failure, or -1 when unknown.
  int line() const { return line_; }

 private:
  int line_;
};

/// Thrown when an iterative analysis (Newton, transient, homotopy) fails to
/// converge within its iteration budget.
///
/// May carry a structured failure report ("ahfic-diag-v1" JSON text) when
/// the analysis ran with convergence forensics enabled (see
/// spice/forensics.h). The payload is a shared string so the exception
/// stays cheap to copy and this header stays free of JSON types.
class ConvergenceError : public Error {
 public:
  using Error::Error;
  ConvergenceError(const std::string& what,
                   std::shared_ptr<const std::string> diagJson)
      : Error(what), diag_(std::move(diagJson)) {}

  /// Serialized "ahfic-diag-v1" report, or nullptr when forensics were
  /// not recording.
  const std::shared_ptr<const std::string>& diag() const { return diag_; }

 private:
  std::shared_ptr<const std::string> diag_;
};

}  // namespace ahfic
