#pragma once
// Error handling primitives shared by every ahfic library.
//
// The libraries throw `ahfic::Error` (or a subclass) for all user-facing
// failure conditions: malformed netlists, non-convergent analyses, bad
// parameter values. Internal logic errors use assertions.

#include <stdexcept>
#include <string>

namespace ahfic {

/// Base exception for all ahfic libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when parsing a textual input (SPICE deck, AHDL netlist, cell
/// record) fails. Carries a human-readable location.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error("parse error at line " + std::to_string(line) + ": " + what),
        line_(line) {}
  explicit ParseError(const std::string& what) : Error(what), line_(-1) {}

  /// 1-based source line of the failure, or -1 when unknown.
  int line() const { return line_; }

 private:
  int line_;
};

/// Thrown when an iterative analysis (Newton, transient, homotopy) fails to
/// converge within its iteration budget.
class ConvergenceError : public Error {
 public:
  using Error::Error;
};

}  // namespace ahfic
