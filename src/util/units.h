#pragma once
// Physical constants, SPICE-style engineering-suffix number parsing and
// engineering-notation formatting.
//
// SPICE suffixes (case-insensitive): T G MEG K M U N P F. Note the classic
// trap: `M` is milli, `MEG` is mega. Trailing unit letters after a suffix
// ("10pF", "1.2um") are accepted and ignored, as in SPICE.

#include <optional>
#include <string>
#include <string_view>

namespace ahfic::util {

/// Physical constants (SI).
namespace constants {
inline constexpr double kBoltzmann = 1.380649e-23;   ///< J/K
inline constexpr double kElectronCharge = 1.602176634e-19;  ///< C
inline constexpr double kZeroCelsiusInKelvin = 273.15;
/// Thermal voltage kT/q at temperature `celsius`.
inline double thermalVoltage(double celsius) {
  return kBoltzmann * (celsius + kZeroCelsiusInKelvin) / kElectronCharge;
}
inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
}  // namespace constants

/// Parses a SPICE-style number with optional engineering suffix.
/// Returns std::nullopt on malformed input. Examples: "1.2u" -> 1.2e-6,
/// "45MEG" -> 4.5e7, "10pF" -> 1e-11, "3k3" is NOT supported.
std::optional<double> parseSpiceNumber(std::string_view text);

/// Like parseSpiceNumber but throws ahfic::ParseError on failure, naming
/// `what` in the message (e.g. the parameter being parsed).
double parseSpiceNumberOrThrow(std::string_view text, std::string_view what);

/// Formats `value` in engineering notation with an SI prefix, e.g.
/// 4.5e7 -> "45M", 1.2e-6 -> "1.2u". `digits` controls significant digits.
std::string formatEngineering(double value, int digits = 4);

/// Formats a frequency as e.g. "1.30 GHz", "45.0 MHz".
std::string formatFrequency(double hertz, int digits = 3);

}  // namespace ahfic::util
