#include "util/fft.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace ahfic::util {

namespace {
bool isPow2(size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

size_t nextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  if (!isPow2(n)) throw Error("fft: size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * constants::kTwoPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<SpectrumBin> amplitudeSpectrum(const std::vector<double>& signal,
                                           double sampleRate, Window window) {
  if (signal.size() < 2) throw Error("amplitudeSpectrum: too few samples");
  if (sampleRate <= 0) throw Error("amplitudeSpectrum: bad sample rate");

  const size_t n = signal.size();
  const size_t nfft = nextPow2(n);

  // Window function and its coherent gain (mean of the window).
  auto windowValue = [&](size_t i) {
    const double x =
        static_cast<double>(i) / static_cast<double>(n - 1);
    switch (window) {
      case Window::kRect:
        return 1.0;
      case Window::kHann:
        return 0.5 - 0.5 * std::cos(constants::kTwoPi * x);
      case Window::kBlackman:
        return 0.42 - 0.5 * std::cos(constants::kTwoPi * x) +
               0.08 * std::cos(2.0 * constants::kTwoPi * x);
    }
    return 1.0;
  };

  std::vector<std::complex<double>> buf(nfft, {0.0, 0.0});
  double gain = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double w = windowValue(i);
    gain += w;
    buf[i] = std::complex<double>(signal[i] * w, 0.0);
  }
  gain /= static_cast<double>(n);

  fft(buf);

  std::vector<SpectrumBin> out;
  const size_t half = nfft / 2;
  out.reserve(half + 1);
  const double binHz = sampleRate / static_cast<double>(nfft);
  for (size_t k = 0; k <= half; ++k) {
    double amp = std::abs(buf[k]) / (static_cast<double>(n) * gain);
    if (k != 0 && k != half) amp *= 2.0;  // single-sided
    out.push_back({binHz * static_cast<double>(k), amp});
  }
  return out;
}

std::vector<SpectralPeak> findPeaks(const std::vector<SpectrumBin>& spectrum,
                                    size_t maxPeaks, double minAmplitude) {
  std::vector<SpectralPeak> peaks;
  for (size_t k = 1; k + 1 < spectrum.size(); ++k) {
    const double a = spectrum[k - 1].amplitude;
    const double b = spectrum[k].amplitude;
    const double c = spectrum[k + 1].amplitude;
    if (b > a && b >= c && b > minAmplitude) {
      // Parabolic interpolation around the local maximum.
      const double denom = a - 2.0 * b + c;
      double delta = 0.0;
      if (std::fabs(denom) > 1e-30) delta = 0.5 * (a - c) / denom;
      delta = std::clamp(delta, -0.5, 0.5);
      const double binHz = spectrum[1].frequency - spectrum[0].frequency;
      peaks.push_back({spectrum[k].frequency + delta * binHz,
                       b - 0.25 * (a - c) * delta});
    }
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const SpectralPeak& x, const SpectralPeak& y) {
              return x.amplitude > y.amplitude;
            });
  if (peaks.size() > maxPeaks) peaks.resize(maxPeaks);
  return peaks;
}

double toneAmplitude(const std::vector<double>& signal, double sampleRate,
                     double frequency) {
  if (signal.size() < 8) throw Error("toneAmplitude: too few samples");
  if (sampleRate <= 0.0 || frequency <= 0.0 ||
      frequency >= sampleRate / 2.0)
    throw Error("toneAmplitude: frequency out of range");
  const size_t n = signal.size();
  double re = 0.0, im = 0.0, gain = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double x = static_cast<double>(k) / static_cast<double>(n - 1);
    const double w = 0.5 - 0.5 * std::cos(constants::kTwoPi * x);
    gain += w;
    const double ph =
        constants::kTwoPi * frequency * static_cast<double>(k) / sampleRate;
    re += signal[k] * w * std::cos(ph);
    im += signal[k] * w * std::sin(ph);
  }
  // Single-sided amplitude: correlation recovers A/2 * sum(w).
  return 2.0 * std::sqrt(re * re + im * im) / gain;
}

double amplitudeNear(const std::vector<SpectrumBin>& spectrum,
                     double frequency, double tolerance) {
  double best = 0.0;
  for (const auto& bin : spectrum) {
    if (std::fabs(bin.frequency - frequency) <= tolerance)
      best = std::max(best, bin.amplitude);
  }
  return best;
}

}  // namespace ahfic::util
