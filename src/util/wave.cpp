#include "util/wave.h"

#include <cstring>
#include <fstream>

#include "util/error.h"

namespace ahfic::util {

namespace {

constexpr char kMagic[8] = {'a', 'h', 'f', 'i', 'c', 'w', 'v', '1'};

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint32_t getU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t doubleBits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bitsDouble(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

}  // namespace

int WaveTable::findColumn(const std::string& name) const {
  for (size_t c = 0; c < columns.size(); ++c)
    if (columns[c] == name) return static_cast<int>(c);
  return -1;
}

void WaveTable::addColumn(std::string name, std::vector<double> values) {
  if (findColumn(name) >= 0)
    throw Error("WaveTable: duplicate column '" + name + "'");
  if (!data.empty() && values.size() != data.front().size())
    throw Error("WaveTable: column '" + name + "' row count mismatch");
  columns.push_back(std::move(name));
  data.push_back(std::move(values));
}

bool WaveTable::bitIdentical(const WaveTable& other) const {
  if (columns != other.columns) return false;
  if (data.size() != other.data.size()) return false;
  for (size_t c = 0; c < data.size(); ++c) {
    if (data[c].size() != other.data[c].size()) return false;
    for (size_t r = 0; r < data[c].size(); ++r)
      if (doubleBits(data[c][r]) != doubleBits(other.data[c][r]))
        return false;
  }
  return true;
}

std::vector<std::uint8_t> encodeWave(const WaveTable& table) {
  const size_t cols = table.columnCount();
  const size_t rows = table.rowCount();
  for (const auto& col : table.data)
    if (col.size() != rows) throw Error("encodeWave: ragged columns");

  std::vector<std::uint8_t> out;
  out.reserve(16 + 4 * cols + 8 * cols * rows);
  for (const char ch : kMagic) out.push_back(static_cast<std::uint8_t>(ch));
  putU32(out, static_cast<std::uint32_t>(cols));
  putU32(out, static_cast<std::uint32_t>(rows));
  for (const auto& name : table.columns)
    putU32(out, static_cast<std::uint32_t>(name.size()));
  for (const auto& name : table.columns)
    for (const char ch : name) out.push_back(static_cast<std::uint8_t>(ch));
  while (out.size() % 8 != 0) out.push_back(0);
  for (const auto& col : table.data) {
    for (const double v : col) {
      const std::uint64_t bits = doubleBits(v);
      for (int b = 0; b < 8; ++b)
        out.push_back(static_cast<std::uint8_t>((bits >> (8 * b)) & 0xFF));
    }
  }
  return out;
}

WaveTable decodeWave(const std::uint8_t* bytes, size_t size) {
  if (size < 16 || std::memcmp(bytes, kMagic, sizeof kMagic) != 0)
    throw ParseError("ahfic-wave-v1: bad magic or truncated header");
  const std::uint32_t cols = getU32(bytes + 8);
  const std::uint32_t rows = getU32(bytes + 12);
  size_t off = 16;
  if (size < off + 4ull * cols)
    throw ParseError("ahfic-wave-v1: truncated name-length table");
  std::vector<std::uint32_t> nameLens(cols);
  for (std::uint32_t c = 0; c < cols; ++c, off += 4)
    nameLens[c] = getU32(bytes + off);

  WaveTable table;
  table.columns.reserve(cols);
  for (std::uint32_t c = 0; c < cols; ++c) {
    if (size < off + nameLens[c])
      throw ParseError("ahfic-wave-v1: truncated column name");
    table.columns.emplace_back(reinterpret_cast<const char*>(bytes + off),
                               nameLens[c]);
    off += nameLens[c];
  }
  off = (off + 7) & ~size_t{7};
  const size_t expect = off + 8ull * cols * rows;
  if (size != expect)
    throw ParseError("ahfic-wave-v1: file size disagrees with header");
  table.data.resize(cols);
  for (std::uint32_t c = 0; c < cols; ++c) {
    auto& col = table.data[c];
    col.resize(rows);
    for (std::uint32_t r = 0; r < rows; ++r, off += 8) {
      std::uint64_t bits = 0;
      for (int b = 0; b < 8; ++b)
        bits |= static_cast<std::uint64_t>(bytes[off + static_cast<size_t>(b)])
                << (8 * b);
      col[r] = bitsDouble(bits);
    }
  }
  return table;
}

WaveTable decodeWave(const std::vector<std::uint8_t>& bytes) {
  return decodeWave(bytes.data(), bytes.size());
}

void writeWaveFile(const std::string& path, const WaveTable& table) {
  const std::vector<std::uint8_t> bytes = encodeWave(table);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw Error("writeWaveFile: cannot open '" + path + "'");
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) throw Error("writeWaveFile: write failed for '" + path + "'");
}

WaveTable readWaveFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("readWaveFile: cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(is),
                                  std::istreambuf_iterator<char>()};
  return decodeWave(bytes);
}

JsonValue waveToJson(const WaveTable& table) {
  JsonValue v = JsonValue::object();
  v.set("schema", "ahfic-wave-v1");
  JsonValue names = JsonValue::array();
  for (const auto& name : table.columns) names.push(name);
  v.set("columns", std::move(names));
  v.set("rows", static_cast<double>(table.rowCount()));
  JsonValue data = JsonValue::object();
  for (size_t c = 0; c < table.columnCount(); ++c) {
    JsonValue col = JsonValue::array();
    for (const double x : table.data[c]) col.push(x);
    data.set(table.columns[c], std::move(col));
  }
  v.set("data", std::move(data));
  return v;
}

WaveTable waveFromJson(const JsonValue& v) {
  if (!v.isObject() || !v.has("schema") ||
      v.get("schema").asString() != "ahfic-wave-v1")
    throw Error("waveFromJson: not an ahfic-wave-v1 document");
  WaveTable table;
  const JsonValue& names = v.get("columns");
  const JsonValue& data = v.get("data");
  for (size_t c = 0; c < names.size(); ++c) {
    const std::string& name = names.at(c).asString();
    const JsonValue& col = data.get(name);
    std::vector<double> values(col.size());
    for (size_t r = 0; r < col.size(); ++r) values[r] = col.at(r).asNumber();
    table.addColumn(name, std::move(values));
  }
  return table;
}

}  // namespace ahfic::util
