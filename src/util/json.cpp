#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace ahfic::util {

namespace {

const JsonValue& sharedNull() {
  static const JsonValue kNull;
  return kNull;
}

}  // namespace

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::asBool() const {
  if (type_ != Type::kBool) throw Error("json: not a bool");
  return bool_;
}

double JsonValue::asNumber() const {
  if (type_ != Type::kNumber) throw Error("json: not a number");
  return number_;
}

const std::string& JsonValue::asString() const {
  if (type_ != Type::kString) throw Error("json: not a string");
  return string_;
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return objectKeys_.size();
  return 0;
}

const JsonValue& JsonValue::at(size_t index) const {
  if (type_ != Type::kArray) throw Error("json: not an array");
  if (index >= array_.size()) throw Error("json: array index out of range");
  return array_[index];
}

void JsonValue::push(JsonValue v) {
  if (type_ != Type::kArray) throw Error("json: push on non-array");
  array_.push_back(std::move(v));
}

bool JsonValue::has(const std::string& key) const {
  return type_ == Type::kObject && object_.count(key) > 0;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  if (type_ != Type::kObject) return sharedNull();
  const auto it = object_.find(key);
  return it == object_.end() ? sharedNull() : it->second;
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (type_ != Type::kObject) throw Error("json: set on non-object");
  if (object_.count(key) == 0) objectKeys_.push_back(key);
  object_[key] = std::move(v);
}

const std::vector<std::string>& JsonValue::keys() const {
  return objectKeys_;
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void appendNumber(std::string& out, double n) {
  if (!std::isfinite(n)) {
    // JSON has no inf/nan; null is the least-surprising encoding.
    out += "null";
    return;
  }
  if (n == std::floor(n) && std::fabs(n) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", n);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", n);
  out += buf;
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<size_t>(indent * (depth + 1)), ' ');
  const std::string padEnd(static_cast<size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";

  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: appendNumber(out, number_); break;
    case Type::kString: appendEscaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[";
      out += nl;
      for (size_t k = 0; k < array_.size(); ++k) {
        out += pad;
        array_[k].dumpTo(out, indent, depth + 1);
        if (k + 1 < array_.size()) out += ",";
        out += nl;
      }
      out += padEnd;
      out += "]";
      break;
    }
    case Type::kObject: {
      if (objectKeys_.empty()) {
        out += "{}";
        break;
      }
      out += "{";
      out += nl;
      for (size_t k = 0; k < objectKeys_.size(); ++k) {
        out += pad;
        appendEscaped(out, objectKeys_[k]);
        out += colon;
        object_.at(objectKeys_[k]).dumpTo(out, indent, depth + 1);
        if (k + 1 < objectKeys_.size()) out += ",";
        out += nl;
      }
      out += padEnd;
      out += "}";
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over the raw text.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skipWs();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    int line = 1;
    for (size_t k = 0; k < pos_ && k < s_.size(); ++k)
      if (s_[k] == '\n') ++line;
    throw ParseError("json: " + what, line);
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skipWs();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue(string());
      case 't':
        if (consumeLiteral("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consumeLiteral("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consumeLiteral("null")) return JsonValue();
        fail("bad literal");
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs are not recombined; the
          // runner's schemas never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    skipWs();
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' ||
            s_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    try {
      return JsonValue(std::stod(s_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue out = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue out = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skipWs();
      std::string key = string();
      expect(':');
      out.set(key, value());
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace ahfic::util
