#pragma once
// ahfic-wave-v1: compact binary waveform tables.
//
// The JSON manifests and result caches are fine for scalar metrics, but
// transient/Monte-Carlo sweep payloads are long f64 columns — encoding
// them as JSON arrays costs ~25 bytes and a strtod per sample. This
// format stores the same table as a small header plus raw little-endian
// IEEE-754 doubles, column-major, 8-byte aligned, so a reader can mmap
// the file and point straight at the columns.
//
// Layout (all integers little-endian):
//   offset  size  field
//        0     8  magic "ahficwv1"
//        8     4  u32 column count C
//       12     4  u32 row count R
//       16   C*4  u32 per-column name length
//            ...  column names, UTF-8, back to back (no terminators)
//            pad  zero bytes to the next multiple of 8
//            ...  C columns of R f64 values each, column-major
//
// Readers must reject files whose declared sizes disagree with the file
// length; writers produce exactly one valid encoding for a given table,
// so byte-level comparison of two files is a bitwise comparison of the
// payloads.

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"

namespace ahfic::util {

/// A named-column table of f64 samples: the in-memory form of one
/// ahfic-wave-v1 file. All columns share the same row count.
struct WaveTable {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> data;  ///< data[c][row]

  bool empty() const { return columns.empty(); }
  size_t columnCount() const { return columns.size(); }
  size_t rowCount() const { return data.empty() ? 0 : data.front().size(); }

  /// Index of the named column, or -1 when absent.
  int findColumn(const std::string& name) const;

  /// Appends a column; throws when the row count disagrees with the
  /// existing columns or the name is already taken.
  void addColumn(std::string name, std::vector<double> values);

  /// Bitwise equality (every sample compared by bit pattern, so +0/-0
  /// and NaN payloads are distinguished — the equivalence suite and the
  /// result cache depend on exact round-trips).
  bool bitIdentical(const WaveTable& other) const;
};

/// Serializes to the ahfic-wave-v1 byte layout.
std::vector<std::uint8_t> encodeWave(const WaveTable& table);

/// Parses an ahfic-wave-v1 buffer. Throws ahfic::ParseError on a bad
/// magic, truncated header or size mismatch.
WaveTable decodeWave(const std::uint8_t* bytes, size_t size);
WaveTable decodeWave(const std::vector<std::uint8_t>& bytes);

/// File I/O convenience; throw ahfic::Error on I/O failure.
void writeWaveFile(const std::string& path, const WaveTable& table);
WaveTable readWaveFile(const std::string& path);

/// JSON converter for existing tooling: {"schema": "ahfic-wave-v1",
/// "columns": [...names], "rows": R, "data": {name: [values...]}}.
/// Values are emitted as numbers; exact bit round-trips go through the
/// binary format, the JSON form is the human/tooling view.
JsonValue waveToJson(const WaveTable& table);
/// Inverse of waveToJson. Throws ahfic::Error on schema mismatch.
WaveTable waveFromJson(const JsonValue& v);

}  // namespace ahfic::util
