#pragma once
// Numeric helpers shared by the analyses and measurement code: dB
// conversions, interpolation, waveform measurements (zero crossings,
// oscillation frequency), curve-peak location and a deterministic RNG.

#include <cstdint>
#include <optional>
#include <vector>

namespace ahfic::util {

/// 20*log10(|x|) with a floor to avoid -inf on exact zero.
double toDb(double linear);

/// 10^(db/20).
double fromDb(double db);

/// 10*log10(x) for power quantities.
double toDbPower(double linear);

/// Linear interpolation of y(x) on sorted sample points. Extrapolates
/// linearly with the edge segments. `xs` must be strictly increasing and the
/// same length as `ys` (>= 2).
double interp1(const std::vector<double>& xs, const std::vector<double>& ys,
               double x);

/// Location of the maximum of a sampled curve, refined by fitting a parabola
/// through the peak sample and its neighbours. Returns {x, y} of the
/// refined maximum. `xs` must be sorted and the same length as `ys` (>= 3
/// for refinement; fewer points fall back to the raw maximum).
struct CurvePeak {
  double x;
  double y;
};
CurvePeak findCurvePeak(const std::vector<double>& xs,
                        const std::vector<double>& ys);

/// Times of rising zero crossings of `signal - level`, linearly
/// interpolated between samples. `times` and `signal` must be equal length.
std::vector<double> risingCrossings(const std::vector<double>& times,
                                    const std::vector<double>& signal,
                                    double level);

/// Estimates the fundamental frequency of a (quasi-)periodic waveform from
/// the mean period between rising crossings of its mean value, skipping
/// the first `skipFraction` of the record to let start-up transients die.
/// Returns std::nullopt when fewer than 3 crossings are found.
std::optional<double> oscillationFrequency(const std::vector<double>& times,
                                           const std::vector<double>& signal,
                                           double skipFraction = 0.3);

/// Peak-to-peak amplitude over the last (1 - skipFraction) of the record.
double steadyStatePeakToPeak(const std::vector<double>& times,
                             const std::vector<double>& signal,
                             double skipFraction = 0.3);

/// Deterministic xorshift64* generator for reproducible synthetic
/// workloads (cell-database population, Monte-Carlo mismatch draws).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal (Box-Muller).
  double normal();
  /// Normal with given mean / standard deviation.
  double normal(double mean, double sigma);
  /// Uniform integer in [0, n).
  std::uint64_t next(std::uint64_t n);

 private:
  std::uint64_t state_;
  bool haveSpare_ = false;
  double spare_ = 0.0;
};

}  // namespace ahfic::util
