#include "util/numeric.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace ahfic::util {

double toDb(double linear) {
  const double mag = std::fabs(linear);
  if (mag < 1e-300) return -6000.0;
  return 20.0 * std::log10(mag);
}

double fromDb(double db) { return std::pow(10.0, db / 20.0); }

double toDbPower(double linear) {
  if (linear < 1e-300) return -3000.0;
  return 10.0 * std::log10(linear);
}

double interp1(const std::vector<double>& xs, const std::vector<double>& ys,
               double x) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw Error("interp1: need >= 2 equal-length samples");
  // Find the segment; extrapolate with edge segments.
  size_t hi = 1;
  if (x > xs.front()) {
    auto it = std::lower_bound(xs.begin(), xs.end(), x);
    if (it == xs.end())
      hi = xs.size() - 1;
    else
      hi = std::max<size_t>(1, static_cast<size_t>(it - xs.begin()));
  }
  const size_t lo = hi - 1;
  const double dx = xs[hi] - xs[lo];
  if (dx == 0.0) return ys[lo];
  const double t = (x - xs[lo]) / dx;
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

CurvePeak findCurvePeak(const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.empty())
    throw Error("findCurvePeak: need equal-length non-empty samples");
  size_t k = 0;
  for (size_t i = 1; i < ys.size(); ++i)
    if (ys[i] > ys[k]) k = i;
  if (k == 0 || k + 1 == ys.size() || ys.size() < 3) return {xs[k], ys[k]};

  // Parabola through (x_{k-1},y_{k-1}), (x_k,y_k), (x_{k+1},y_{k+1}) on a
  // possibly non-uniform grid: Lagrange derivative = 0.
  const double x0 = xs[k - 1], x1 = xs[k], x2 = xs[k + 1];
  const double y0 = ys[k - 1], y1 = ys[k], y2 = ys[k + 1];
  const double d0 = (x1 - x0) * (y1 - y2);
  const double d2 = (x1 - x2) * (y1 - y0);
  const double denom = 2.0 * (d0 - d2);
  if (std::fabs(denom) < 1e-300) return {x1, y1};
  double xp = x1 - ((x1 - x0) * d0 - (x1 - x2) * d2) / denom;
  xp = std::clamp(xp, std::min(x0, x2), std::max(x0, x2));
  // Evaluate the parabola at xp via Lagrange basis.
  const double l0 = (xp - x1) * (xp - x2) / ((x0 - x1) * (x0 - x2));
  const double l1 = (xp - x0) * (xp - x2) / ((x1 - x0) * (x1 - x2));
  const double l2 = (xp - x0) * (xp - x1) / ((x2 - x0) * (x2 - x1));
  return {xp, y0 * l0 + y1 * l1 + y2 * l2};
}

std::vector<double> risingCrossings(const std::vector<double>& times,
                                    const std::vector<double>& signal,
                                    double level) {
  if (times.size() != signal.size())
    throw Error("risingCrossings: length mismatch");
  std::vector<double> out;
  for (size_t i = 1; i < signal.size(); ++i) {
    const double a = signal[i - 1] - level;
    const double b = signal[i] - level;
    if (a < 0.0 && b >= 0.0) {
      const double t =
          (b == a) ? times[i]
                   : times[i - 1] + (times[i] - times[i - 1]) * (-a) / (b - a);
      out.push_back(t);
    }
  }
  return out;
}

std::optional<double> oscillationFrequency(const std::vector<double>& times,
                                           const std::vector<double>& signal,
                                           double skipFraction) {
  if (times.size() != signal.size() || times.size() < 4) return std::nullopt;
  const double t0 =
      times.front() + skipFraction * (times.back() - times.front());

  std::vector<double> t, v;
  double mean = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < times.size(); ++i) {
    if (times[i] >= t0) {
      t.push_back(times[i]);
      v.push_back(signal[i]);
      mean += signal[i];
      ++n;
    }
  }
  if (n < 4) return std::nullopt;
  mean /= static_cast<double>(n);

  // Hysteresis crossings: a rising crossing of the mean only counts after
  // the signal has dipped at least 20% of the peak-to-peak below the
  // mean, so step-scale numerical wiggle is not mistaken for cycles.
  double lo = v[0], hi = v[0];
  for (double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const double hyst = 0.2 * (hi - lo);
  if (hyst <= 0.0) return std::nullopt;

  std::vector<double> crossings;
  bool armed = false;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] < mean - hyst) armed = true;
    if (armed && v[i - 1] < mean && v[i] >= mean) {
      const double a = v[i - 1] - mean;
      const double b = v[i] - mean;
      crossings.push_back(t[i - 1] +
                          (t[i] - t[i - 1]) * (-a) / (b - a));
      armed = false;
    }
  }
  if (crossings.size() < 3) return std::nullopt;
  // Mean period over all full cycles in the window.
  const double span = crossings.back() - crossings.front();
  if (span <= 0.0) return std::nullopt;
  return static_cast<double>(crossings.size() - 1) / span;
}

double steadyStatePeakToPeak(const std::vector<double>& times,
                             const std::vector<double>& signal,
                             double skipFraction) {
  if (times.size() != signal.size() || times.empty())
    throw Error("steadyStatePeakToPeak: length mismatch");
  const double t0 =
      times.front() + skipFraction * (times.back() - times.front());
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (size_t i = 0; i < times.size(); ++i) {
    if (times[i] < t0) continue;
    if (first) {
      lo = hi = signal[i];
      first = false;
    } else {
      lo = std::min(lo, signal[i]);
      hi = std::max(hi, signal[i]);
    }
  }
  return first ? 0.0 : hi - lo;
}

Rng::Rng(std::uint64_t seed) : state_(seed ? seed : 1) {}

double Rng::uniform() {
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  const std::uint64_t r = state_ * 0x2545F4914F6CDD1Dull;
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (haveSpare_) {
    haveSpare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  haveSpare_ = true;
  return u * m;
}

double Rng::normal(double mean, double sigma) {
  return mean + sigma * normal();
}

std::uint64_t Rng::next(std::uint64_t n) {
  if (n == 0) return 0;
  return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
}

}  // namespace ahfic::util
