#pragma once
// Clang Thread Safety Analysis annotation macros (AHFIC_ prefix).
//
// These wrap clang's capability attributes so the locking discipline of
// the concurrent subsystems (src/obs, src/runner, src/serve) is checked
// at *compile time*: a read of a AHFIC_GUARDED_BY member without its
// mutex held, a call into a AHFIC_REQUIRES function without the lock,
// or an acquisition order that contradicts AHFIC_ACQUIRED_BEFORE is a
// warning under `-Wthread-safety -Wthread-safety-beta` — and an error in
// the thread-safety CI job, which builds all of src/ with -Werror.
//
// On any compiler without the attributes (gcc, msvc) every macro
// expands to nothing, so annotated code costs nothing anywhere: the
// analysis is purely static and the wrappers in util/mutex.h compile
// down to plain std::mutex operations.
//
// Conventions (see docs/concurrency.md for the full guide):
//  * shared state gets AHFIC_GUARDED_BY(mu_) at the declaration;
//  * private "...Locked()" helpers get AHFIC_REQUIRES(mu_);
//  * self-locking public methods may add AHFIC_EXCLUDES(mu_) to reject
//    re-entrant callers;
//  * lock-order edges are declared with AHFIC_ACQUIRED_BEFORE /
//    AHFIC_ACQUIRED_AFTER so an inversion fails to compile;
//  * AHFIC_NO_THREAD_SAFETY_ANALYSIS is a last resort for code whose
//    safety argument the analysis cannot express — every use needs a
//    comment saying what that argument is.

#if defined(__clang__) && (!defined(SWIG))
#define AHFIC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AHFIC_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Marks a type as a capability ("mutex" in diagnostics).
#define AHFIC_CAPABILITY(x) AHFIC_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (util::MutexLock).
#define AHFIC_SCOPED_CAPABILITY AHFIC_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define AHFIC_GUARDED_BY(x) AHFIC_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define AHFIC_PT_GUARDED_BY(x) AHFIC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-order edges: acquiring this capability is legal only before /
/// after the listed ones. Checked under -Wthread-safety-beta, which is
/// why the CI job enables it: an inversion becomes a compile error.
#define AHFIC_ACQUIRED_BEFORE(...) \
  AHFIC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define AHFIC_ACQUIRED_AFTER(...) \
  AHFIC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// The function must be called with the listed capabilities held (and
/// does not release them).
#define AHFIC_REQUIRES(...) \
  AHFIC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define AHFIC_REQUIRES_SHARED(...) \
  AHFIC_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities itself.
#define AHFIC_ACQUIRE(...) \
  AHFIC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define AHFIC_RELEASE(...) \
  AHFIC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function acquires the capability only when returning `result`.
#define AHFIC_TRY_ACQUIRE(result, ...) \
  AHFIC_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// The caller must NOT hold the listed capabilities (self-locking
/// methods use this to reject re-entrant callers).
#define AHFIC_EXCLUDES(...) \
  AHFIC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define AHFIC_RETURN_CAPABILITY(x) \
  AHFIC_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use must
/// carry a comment with the manual safety argument.
#define AHFIC_NO_THREAD_SAFETY_ANALYSIS \
  AHFIC_THREAD_ANNOTATION_(no_thread_safety_analysis)
