#pragma once
// Minimal JSON value: parse, build, serialize. Covers the subset the
// runner subsystem needs for run manifests and on-disk result caches —
// null/bool/number/string/array/object with UTF-8 passthrough — without
// pulling in an external dependency.
//
// Usage:
//   JsonValue v = JsonValue::object();
//   v.set("threads", 4.0);
//   v.set("jobs", JsonValue::array());
//   std::string text = v.dump(2);
//   JsonValue back = parseJson(text);

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ahfic::util {

/// A JSON document node. Numbers are stored as double (the manifest and
/// cache schemas only carry metrics and counters; 53-bit integer precision
/// is sufficient and matches what any JSON consumer will assume).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}                // NOLINT
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}          // NOLINT
  JsonValue(int n) : type_(Type::kNumber), number_(n) {}             // NOLINT
  JsonValue(long n)                                                  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}     // NOLINT
  JsonValue(std::string s)                                           // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}

  static JsonValue array();
  static JsonValue object();

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::kNull; }
  bool isBool() const { return type_ == Type::kBool; }
  bool isNumber() const { return type_ == Type::kNumber; }
  bool isString() const { return type_ == Type::kString; }
  bool isArray() const { return type_ == Type::kArray; }
  bool isObject() const { return type_ == Type::kObject; }

  /// Typed accessors; throw ahfic::Error on type mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;

  /// Array access.
  size_t size() const;
  const JsonValue& at(size_t index) const;
  void push(JsonValue v);

  /// Object access. `get` returns a shared null for missing keys, so
  /// chained lookups of optional fields do not throw.
  bool has(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;
  void set(const std::string& key, JsonValue v);
  /// Object keys in insertion order.
  const std::vector<std::string>& keys() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  std::string dump(int indent = 0) const;

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::string> objectKeys_;  // preserves insertion order
  std::map<std::string, JsonValue> object_;
};

/// Parses a JSON document. Throws ahfic::ParseError on malformed input.
JsonValue parseJson(const std::string& text);

}  // namespace ahfic::util
