#pragma once
// AHFIC_RESTRICT: portable spelling of C99 `restrict` for C++.
//
// Annotates pointer parameters of the batch data plane's inner loops
// (structure-of-arrays device evaluation, slot-ordered scatters) so the
// compiler can prove the spans don't alias and autovectorize the
// surrounding arithmetic. Expands to nothing on compilers without the
// extension — the loops stay correct, just scalar.

#if defined(__GNUC__) || defined(__clang__)
#define AHFIC_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define AHFIC_RESTRICT __restrict
#else
#define AHFIC_RESTRICT
#endif
