#pragma once
// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable that carry the capability attributes from
// util/thread_annotations.h, so clang's Thread Safety Analysis can
// check the locking discipline of every concurrent subsystem at
// compile time (docs/concurrency.md).
//
// The wrappers are deliberately minimal — exactly the surface the
// codebase uses, nothing speculative:
//
//   util::Mutex      — a capability; lock()/unlock()/tryLock().
//   util::MutexLock  — scoped capability; the only idiomatic way to
//                      hold a Mutex (replaces std::lock_guard and
//                      std::unique_lock).
//   util::CondVar    — condition variable whose wait family REQUIRES
//                      the caller to hold the mutex, making the
//                      predicate-protected wait loop visible to the
//                      analysis:
//
//                        util::MutexLock lock(&mu_);
//                        while (!stopping_ && queue_.empty())
//                          cv_.wait(&mu_);          // checked
//
// Everything inlines to the std:: equivalent; off clang the
// annotations vanish entirely, so these types cost nothing at runtime
// on any compiler.

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace ahfic::util {

class AHFIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AHFIC_ACQUIRE() { mu_.lock(); }
  void unlock() AHFIC_RELEASE() { mu_.unlock(); }
  bool tryLock() AHFIC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() needs the wrapped handle
  std::mutex mu_;
};

/// RAII lock — the scoped capability the analysis tracks. Holds the
/// mutex for the full scope; there is intentionally no early unlock()
/// (restructure the scope instead — an early release is exactly the
/// kind of window the analysis exists to expose).
class AHFIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) AHFIC_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() AHFIC_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable over util::Mutex. The wait family takes the
/// mutex explicitly and is annotated AHFIC_REQUIRES(mu): calling it
/// without the lock held is a compile error under -Wthread-safety.
/// (The internal unlock/relock during the wait is invisible to the
/// analysis — the Abseil model — which is exactly right: the caller
/// must re-check its predicate after every return.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

  void wait(Mutex* mu) AHFIC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock keeps ownership
  }

  template <class Rep, class Period>
  std::cv_status waitFor(Mutex* mu,
                         const std::chrono::duration<Rep, Period>& dur)
      AHFIC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, dur);
    lock.release();
    return status;
  }

  template <class Clock, class Duration>
  std::cv_status waitUntil(
      Mutex* mu, const std::chrono::time_point<Clock, Duration>& deadline)
      AHFIC_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace ahfic::util
