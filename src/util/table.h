#pragma once
// Text-table and CSV emission used by the benchmark harnesses to print
// paper-style tables (Table 1) and figure series (Figs. 3, 5, 9).

#include <iosfwd>
#include <string>
#include <vector>

namespace ahfic::util {

/// A simple column-aligned text table.
///
/// Usage:
///   Table t({"Shape", "fT peak", "Ic @ peak"});
///   t.addRow({"N1.2-6D", "8.9 GHz", "1.2 mA"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Number of data rows (excluding header).
  size_t rowCount() const { return rows_.size(); }

  /// Renders with column alignment and a header underline.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (fields with commas/quotes get quoted).
  void printCsv(std::ostream& os) const;

  /// Convenience: render to a string via print().
  std::string toString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (printf "%.*f").
std::string fixed(double v, int decimals);

}  // namespace ahfic::util
