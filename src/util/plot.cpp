#include "util/plot.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/units.h"

namespace ahfic::util {

namespace {

struct Frame {
  std::vector<std::string> rows;  // height strings of width chars
  double yMin, yMax, xMin, xMax;
  int width, height;

  Frame(int w, int h, double x0, double x1, double y0, double y1)
      : rows(static_cast<size_t>(h), std::string(static_cast<size_t>(w), ' ')),
        yMin(y0),
        yMax(y1),
        xMin(x0),
        xMax(x1),
        width(w),
        height(h) {}

  void mark(double x, double y, char c) {
    if (yMax == yMin) return;
    int col = static_cast<int>((x - xMin) / (xMax - xMin) * (width - 1) + 0.5);
    int row = static_cast<int>((yMax - y) / (yMax - yMin) * (height - 1) + 0.5);
    col = std::clamp(col, 0, width - 1);
    row = std::clamp(row, 0, height - 1);
    char& cell = rows[static_cast<size_t>(row)][static_cast<size_t>(col)];
    if (cell == ' ' || cell == c)
      cell = c;
    else
      cell = '#';
  }

  std::string render(const PlotOptions& opt) const {
    std::string out;
    if (!opt.yLabel.empty()) out += opt.yLabel + "\n";
    const std::string top = formatEngineering(yMax, 3);
    const std::string bot = formatEngineering(yMin, 3);
    const size_t lab = std::max(top.size(), bot.size());
    for (int r = 0; r < height; ++r) {
      std::string prefix(lab, ' ');
      if (r == 0)
        prefix = top + std::string(lab - top.size(), ' ');
      else if (r == height - 1)
        prefix = bot + std::string(lab - bot.size(), ' ');
      out += prefix + " |" + rows[static_cast<size_t>(r)] + "\n";
    }
    out += std::string(lab + 1, ' ') + "+" +
           std::string(static_cast<size_t>(width), '-') + "\n";
    const std::string x0 = formatEngineering(xMin, 3);
    const std::string x1 = formatEngineering(xMax, 3);
    std::string axis = std::string(lab + 2, ' ') + x0;
    const size_t pad = lab + 2 + static_cast<size_t>(width);
    if (axis.size() + x1.size() < pad)
      axis += std::string(pad - axis.size() - x1.size(), ' ') + x1;
    out += axis;
    if (!opt.xLabel.empty()) out += "  " + opt.xLabel;
    out += "\n";
    return out;
  }
};

void validate(const std::vector<double>& xs, const std::vector<double>& ys,
              const PlotOptions& opt) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw Error("asciiChart: need >= 2 equal-length samples");
  if (opt.width < 8 || opt.height < 4)
    throw Error("asciiChart: plot area too small");
}

void range(const std::vector<double>& ys, double& lo, double& hi) {
  lo = *std::min_element(ys.begin(), ys.end());
  hi = *std::max_element(ys.begin(), ys.end());
  if (hi == lo) {
    hi += 1.0;
    lo -= 1.0;
  }
}

void drawSeries(Frame& f, const std::vector<double>& xs,
                const std::vector<double>& ys, char c) {
  // Per-column min/max banding so decimation cannot hide fast swings.
  std::vector<double> colMin(static_cast<size_t>(f.width), 1e300);
  std::vector<double> colMax(static_cast<size_t>(f.width), -1e300);
  for (size_t k = 0; k < xs.size(); ++k) {
    int col = static_cast<int>((xs[k] - f.xMin) / (f.xMax - f.xMin) *
                                   (f.width - 1) +
                               0.5);
    col = std::clamp(col, 0, f.width - 1);
    colMin[static_cast<size_t>(col)] =
        std::min(colMin[static_cast<size_t>(col)], ys[k]);
    colMax[static_cast<size_t>(col)] =
        std::max(colMax[static_cast<size_t>(col)], ys[k]);
  }
  for (int col = 0; col < f.width; ++col) {
    const auto cs = static_cast<size_t>(col);
    if (colMin[cs] > colMax[cs]) continue;  // empty column
    const double x = f.xMin + (f.xMax - f.xMin) * col / (f.width - 1);
    // Draw the band from min to max in this column.
    const int rowLo = static_cast<int>(
        (f.yMax - colMin[cs]) / (f.yMax - f.yMin) * (f.height - 1) + 0.5);
    const int rowHi = static_cast<int>(
        (f.yMax - colMax[cs]) / (f.yMax - f.yMin) * (f.height - 1) + 0.5);
    for (int r = std::clamp(rowHi, 0, f.height - 1);
         r <= std::clamp(rowLo, 0, f.height - 1); ++r) {
      const double y =
          f.yMax - (f.yMax - f.yMin) * r / (f.height - 1);
      f.mark(x, y, c);
    }
  }
}

}  // namespace

std::string asciiChart(const std::vector<double>& xs,
                       const std::vector<double>& ys,
                       const PlotOptions& opt) {
  validate(xs, ys, opt);
  double lo, hi;
  range(ys, lo, hi);
  Frame f(opt.width, opt.height, xs.front(), xs.back(), lo, hi);
  drawSeries(f, xs, ys, opt.mark);
  return f.render(opt);
}

std::string asciiChart2(const std::vector<double>& xs,
                        const std::vector<double>& y1,
                        const std::vector<double>& y2,
                        const PlotOptions& opt) {
  validate(xs, y1, opt);
  validate(xs, y2, opt);
  double lo1, hi1, lo2, hi2;
  range(y1, lo1, hi1);
  range(y2, lo2, hi2);
  Frame f(opt.width, opt.height, xs.front(), xs.back(),
          std::min(lo1, lo2), std::max(hi1, hi2));
  drawSeries(f, xs, y1, '*');
  drawSeries(f, xs, y2, '+');
  return f.render(opt);
}

}  // namespace ahfic::util
