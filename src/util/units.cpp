#include "util/units.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"
#include "util/strings.h"

namespace ahfic::util {

namespace {

struct Suffix {
  std::string_view text;
  double scale;
};

// Longest match first: MEG must be tried before M.
constexpr std::array<Suffix, 10> kSuffixes{{
    {"MEG", 1e6},
    {"MIL", 25.4e-6},
    {"T", 1e12},
    {"G", 1e9},
    {"K", 1e3},
    {"M", 1e-3},
    {"U", 1e-6},
    {"N", 1e-9},
    {"P", 1e-12},
    {"F", 1e-15},
}};

}  // namespace

std::optional<double> parseSpiceNumber(std::string_view text) {
  std::string_view s = trim(text);
  if (s.empty()) return std::nullopt;

  // Parse the numeric part with strtod.
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || errno == ERANGE) return std::nullopt;

  std::string_view rest = trim(std::string_view(end));
  if (rest.empty()) return value;

  // Engineering suffix, longest match first; anything after a matched
  // suffix must be alphabetic unit text ("F", "Hz", "m") and is ignored,
  // per SPICE convention.
  auto isUnitTail = [](std::string_view t) {
    for (char c : t)
      if (!std::isalpha(static_cast<unsigned char>(c))) return false;
    return true;
  };

  for (const auto& suf : kSuffixes) {
    if (startsWithNoCase(rest, suf.text)) {
      std::string_view tail = rest.substr(suf.text.size());
      // Special case: "MEG" matched but text was e.g. "MEGX1"? tail must
      // be alphabetic.
      if (isUnitTail(tail)) return value * suf.scale;
    }
  }
  // No scale suffix: allow a pure unit tail like "Hz" or "V".
  if (isUnitTail(rest)) return value;
  return std::nullopt;
}

double parseSpiceNumberOrThrow(std::string_view text, std::string_view what) {
  auto v = parseSpiceNumber(text);
  if (!v) {
    throw ParseError("cannot parse number '" + std::string(text) + "' for " +
                     std::string(what));
  }
  return *v;
}

std::string formatEngineering(double value, int digits) {
  if (value == 0.0) return "0";
  if (!std::isfinite(value)) return value > 0 ? "inf" : (std::isnan(value) ? "nan" : "-inf");

  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"},   {1e3, "k"},  {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  double mag = std::fabs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale * 0.9999999 || (&p == &kPrefixes[9])) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g%s", digits, value / p.scale,
                    p.name);
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string formatFrequency(double hertz, int digits) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr Prefix kPrefixes[] = {
      {1e9, "GHz"}, {1e6, "MHz"}, {1e3, "kHz"}, {1.0, "Hz"}};
  double mag = std::fabs(hertz);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale || p.scale == 1.0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g %s", digits, hertz / p.scale,
                    p.name);
      return buf;
    }
  }
  return "0 Hz";
}

}  // namespace ahfic::util
