#pragma once
// Re-use study (paper Sec. 3): "Investigating the re-use of IC design in
// the authors' design group revealed that above 70% of the circuits can
// be re-used."
//
// We reproduce that claim's mechanics with a synthetic project stream:
// each IC project needs a set of blocks drawn from a product-line block
// taxonomy; blocks already in the database are checked out (re-used),
// missing ones are newly designed and registered. As the library matures
// the re-use ratio climbs past the paper's 70%.

#include <cstdint>
#include <vector>

#include "celldb/database.h"

namespace ahfic::celldb {

/// Knobs of the synthetic project stream.
struct ReuseSimConfig {
  int projects = 30;            ///< number of consecutive IC projects
  int blocksPerProjectMin = 8;  ///< smallest project
  int blocksPerProjectMax = 25; ///< largest project
  /// Size of the product line's block taxonomy; the smaller it is
  /// relative to total demand, the higher the eventual re-use.
  int distinctBlockKinds = 60;
  /// Zipf-like skew: low-index block kinds are requested far more often
  /// (every tuner needs a mixer; few need an exotic detector).
  double popularitySkew = 1.2;
  std::uint64_t seed = 20250706;
};

/// Per-project outcome.
struct ProjectOutcome {
  int blocksNeeded = 0;
  int blocksReused = 0;
  int blocksNewlyDesigned = 0;
  double reuseRatio() const {
    return blocksNeeded == 0
               ? 0.0
               : static_cast<double>(blocksReused) / blocksNeeded;
  }
};

/// Full study result.
struct ReuseStudyResult {
  std::vector<ProjectOutcome> projects;
  int totalNeeded = 0;
  int totalReused = 0;
  /// Overall ratio across all projects.
  double overallReuseRatio() const {
    return totalNeeded == 0
               ? 0.0
               : static_cast<double>(totalReused) / totalNeeded;
  }
  /// Ratio over the second half of the stream (the steady state the
  /// paper's ">70%" describes).
  double steadyStateReuseRatio() const;
};

/// Runs the study against `db` (cells are registered into it as projects
/// design new blocks; pre-seeding the db raises early re-use).
ReuseStudyResult runReuseStudy(CellDatabase& db, const ReuseSimConfig& cfg);

}  // namespace ahfic::celldb
