#include "celldb/html.h"

#include <cstdio>
#include <sstream>

#include "celldb/cell.h"
#include "celldb/database.h"
#include "util/strings.h"

namespace ahfic::celldb {

namespace util = ahfic::util;

std::string escapeHtml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

/// Percent-encodes one path segment (RFC 3986 unreserved set passes).
std::string encodePathSegment(const std::string& s) {
  std::string out;
  for (unsigned char c : s) {
    const bool unreserved =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
        c == '~';
    if (unreserved) {
      out += static_cast<char>(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", c);
      out += buf;
    }
  }
  return out;
}

std::string cellUrl(const HtmlOptions& opts, const Cell& cell) {
  return opts.cellPathPrefix + encodePathSegment(cell.library) + "/" +
         encodePathSegment(cell.name);
}

void emitDetails(std::ostream& os, const char* summary,
                 const std::string& content) {
  if (content.empty()) return;
  os << "<details><summary>" << summary << "</summary><pre>"
     << escapeHtml(content) << "</pre></details>";
}

/// Everything below the name line: document, views, search aids,
/// provenance. Shared by index entries and standalone pages.
void emitCellContent(std::ostream& os, const Cell& cell) {
  if (!cell.document.empty())
    os << "<br/><pre>" << escapeHtml(cell.document) << "</pre>";
  emitDetails(os, "schematic", cell.schematic);
  emitDetails(os, "behavioral", cell.behavioral);
  if (!cell.ports.empty())
    os << "<p>ports: <code>" << escapeHtml(util::join(cell.ports, " "))
       << "</code></p>";
  if (!cell.keywords.empty())
    os << "<p>keywords: " << escapeHtml(util::join(cell.keywords, ", "))
       << "</p>";
  if (!cell.author.empty() || !cell.registeredOn.empty() ||
      cell.reuseCount != 0) {
    os << "<p><small>";
    if (!cell.author.empty()) os << "author " << escapeHtml(cell.author);
    if (!cell.registeredOn.empty())
      os << (cell.author.empty() ? "" : ", ") << "registered "
         << escapeHtml(cell.registeredOn);
    if (cell.reuseCount != 0)
      os << ", reused " << cell.reuseCount << "x";
    os << "</small></p>";
  }
}

void emitNameLine(std::ostream& os, const Cell& cell,
                  const HtmlOptions& opts) {
  if (opts.liveLinks)
    os << "<a href=\"" << cellUrl(opts, cell) << "\"><b>"
       << escapeHtml(cell.name) << "</b></a>";
  else
    os << "<b>" << escapeHtml(cell.name) << "</b>";
  if (!cell.category2.empty())
    os << " <i>(" << escapeHtml(cell.category2) << ")</i>";
}

}  // namespace

std::string cellToHtml(const Cell& cell) {
  std::ostringstream os;
  emitNameLine(os, cell, HtmlOptions{});
  emitCellContent(os, cell);
  return os.str();
}

std::string cellPageHtml(const Cell& cell, const HtmlOptions& opts) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html><head><title>Cell "
     << escapeHtml(cell.key()) << "</title></head>\n<body>\n";
  os << "<h1>" << escapeHtml(cell.name) << "</h1>\n";
  os << "<p>library " << escapeHtml(cell.library) << " &middot; "
     << escapeHtml(cell.category1);
  if (!cell.category2.empty())
    os << " / " << escapeHtml(cell.category2);
  os << "</p>\n";
  emitCellContent(os, cell);
  if (opts.liveLinks) os << "\n<p><a href=\"/celldb\">back to index</a></p>";
  os << "\n</body></html>\n";
  return os.str();
}

std::string libraryIndexHtml(const CellDatabase& db,
                             const HtmlOptions& opts) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html><head><title>Analog Cell Library"
        "</title></head>\n<body>\n";
  os << "<h1>Analog Cell Library</h1>\n";
  const auto st = db.stats();
  os << "<p>" << st.cellCount << " cells in " << st.libraryCount
     << " libraries; " << st.totalCheckouts << " checkouts recorded.</p>\n";
  for (const auto& lib : db.libraries()) {
    os << "<h2>Library " << escapeHtml(lib) << "</h2>\n";
    for (const auto& cat : db.categories(lib)) {
      os << "<h3>" << escapeHtml(cat) << "</h3>\n<ul>\n";
      for (const Cell* c : db.byCategory(lib, cat)) {
        os << "<li>";
        emitNameLine(os, *c, opts);
        emitCellContent(os, *c);
        os << "</li>\n";
      }
      os << "</ul>\n";
    }
  }
  os << "</body></html>\n";
  return os.str();
}

}  // namespace ahfic::celldb
