#include "celldb/database.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "ahdl/lang.h"
#include "celldb/html.h"
#include "spice/circuit.h"
#include "spice/parser.h"
#include "util/error.h"
#include "util/strings.h"

namespace ahfic::celldb {

namespace util = ahfic::util;

namespace {

void validateCell(const Cell& cell) {
  if (cell.name.empty() || cell.library.empty())
    throw Error("cell registration: name and library are required");
  if (cell.category1.empty())
    throw Error("cell '" + cell.name + "': category1 is required");
  if (cell.schematic.empty() && cell.behavioral.empty())
    throw Error("cell '" + cell.name +
                "': needs a schematic or a behavioural view");
  if (!cell.schematic.empty()) {
    try {
      spice::Circuit scratch;
      spice::parseInto(scratch, cell.schematic);
    } catch (const Error& e) {
      throw Error("cell '" + cell.name +
                  "': schematic does not parse: " + e.what());
    }
  }
  if (!cell.behavioral.empty()) {
    try {
      ahdl::parseAhdl(cell.behavioral);
    } catch (const Error& e) {
      throw Error("cell '" + cell.name +
                  "': behavioural view does not parse: " + e.what());
    }
  }
}

}  // namespace

int CellDatabase::indexOf(const std::string& library,
                          const std::string& name) const {
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (util::equalsNoCase(cells_[i].library, library) &&
        util::equalsNoCase(cells_[i].name, name))
      return static_cast<int>(i);
  }
  return -1;
}

void CellDatabase::registerCell(Cell cell) {
  validateCell(cell);
  if (indexOf(cell.library, cell.name) >= 0)
    throw Error("cell '" + cell.key() + "' already registered");
  cells_.push_back(std::move(cell));
}

void CellDatabase::updateCell(Cell cell) {
  validateCell(cell);
  const int idx = indexOf(cell.library, cell.name);
  if (idx < 0)
    throw Error("cell '" + cell.key() + "' not found for update");
  cells_[static_cast<size_t>(idx)] = std::move(cell);
}

bool CellDatabase::removeCell(const std::string& library,
                              const std::string& name) {
  const int idx = indexOf(library, name);
  if (idx < 0) return false;
  cells_.erase(cells_.begin() + idx);
  return true;
}

const Cell* CellDatabase::find(const std::string& library,
                               const std::string& name) const {
  const int idx = indexOf(library, name);
  return idx < 0 ? nullptr : &cells_[static_cast<size_t>(idx)];
}

std::vector<const Cell*> CellDatabase::byCategory(
    const std::string& library, const std::string& category1,
    const std::string& category2) const {
  std::vector<const Cell*> out;
  for (const auto& c : cells_) {
    if (!util::equalsNoCase(c.library, library)) continue;
    if (!category1.empty() && !util::equalsNoCase(c.category1, category1))
      continue;
    if (!category2.empty() && !util::equalsNoCase(c.category2, category2))
      continue;
    out.push_back(&c);
  }
  return out;
}

std::vector<const Cell*> CellDatabase::search(
    const std::string& query) const {
  std::vector<const Cell*> out;
  for (const auto& c : cells_) {
    bool hit = util::containsNoCase(c.name, query) ||
               util::containsNoCase(c.category1, query) ||
               util::containsNoCase(c.category2, query) ||
               util::containsNoCase(c.document, query);
    for (const auto& k : c.keywords)
      hit = hit || util::containsNoCase(k, query);
    if (hit) out.push_back(&c);
  }
  return out;
}

Cell CellDatabase::checkout(const std::string& library,
                            const std::string& name) {
  const int idx = indexOf(library, name);
  if (idx < 0)
    throw Error("checkout: cell '" + library + "/" + name + "' not found");
  Cell& c = cells_[static_cast<size_t>(idx)];
  ++c.reuseCount;
  return c;
}

std::vector<std::string> CellDatabase::libraries() const {
  std::set<std::string> s;
  for (const auto& c : cells_) s.insert(c.library);
  return {s.begin(), s.end()};
}

std::vector<std::string> CellDatabase::categories(
    const std::string& library) const {
  std::set<std::string> s;
  for (const auto& c : cells_)
    if (util::equalsNoCase(c.library, library)) s.insert(c.category1);
  return {s.begin(), s.end()};
}

std::vector<std::string> CellDatabase::subcategories(
    const std::string& library, const std::string& category1) const {
  std::set<std::string> s;
  for (const auto& c : cells_) {
    if (util::equalsNoCase(c.library, library) &&
        util::equalsNoCase(c.category1, category1) && !c.category2.empty())
      s.insert(c.category2);
  }
  return {s.begin(), s.end()};
}

DatabaseStats CellDatabase::stats() const {
  DatabaseStats st;
  st.cellCount = cells_.size();
  st.libraryCount = libraries().size();
  for (const auto& c : cells_) {
    st.totalCheckouts += c.reuseCount;
    if (!c.behavioral.empty()) ++st.cellsWithBehavioralView;
    if (!c.simulationData.empty()) ++st.cellsWithSimulationData;
  }
  return st;
}

// ---- persistence ----

namespace {

void emitBlock(std::ostream& os, const std::string& key,
               const std::string& value) {
  if (value.empty()) return;
  os << key << " <<END\n" << value;
  if (value.back() != '\n') os << '\n';
  os << "END\n";
}

}  // namespace

std::string CellDatabase::toText() const {
  std::ostringstream os;
  os << "# ahfic analog cell database v1\n";
  for (const auto& c : cells_) {
    os << "cell " << c.name << '\n';
    os << "library " << c.library << '\n';
    os << "category1 " << c.category1 << '\n';
    if (!c.category2.empty()) os << "category2 " << c.category2 << '\n';
    if (!c.symbol.empty()) os << "symbol " << c.symbol << '\n';
    if (!c.author.empty()) os << "author " << c.author << '\n';
    if (!c.registeredOn.empty())
      os << "registered " << c.registeredOn << '\n';
    if (c.reuseCount != 0) os << "reuse_count " << c.reuseCount << '\n';
    if (!c.keywords.empty())
      os << "keywords " << util::join(c.keywords, ", ") << '\n';
    if (!c.ports.empty())
      os << "ports " << util::join(c.ports, " ") << '\n';
    emitBlock(os, "document", c.document);
    emitBlock(os, "schematic", c.schematic);
    emitBlock(os, "behavioral", c.behavioral);
    for (const auto& [name, data] : c.simulationData)
      emitBlock(os, "simdata " + name, data);
    os << "end\n\n";
  }
  return os.str();
}

CellDatabase CellDatabase::fromText(const std::string& text) {
  CellDatabase db;
  std::istringstream is(text);
  std::string line;
  int lineNo = 0;
  std::optional<Cell> cur;

  auto readHeredoc = [&](void) {
    std::string body;
    while (std::getline(is, line)) {
      ++lineNo;
      if (util::trim(line) == "END") return body;
      body += line;
      body += '\n';
    }
    throw ParseError("unterminated heredoc block", lineNo);
  };

  while (std::getline(is, line)) {
    ++lineNo;
    const std::string t{util::trim(line)};
    if (t.empty() || t[0] == '#') continue;

    const size_t sp = t.find(' ');
    const std::string key = t.substr(0, sp);
    std::string rest =
        sp == std::string::npos ? "" : std::string(util::trim(t.substr(sp)));

    if (key == "cell") {
      if (cur.has_value())
        throw ParseError("nested 'cell' without 'end'", lineNo);
      cur = Cell{};
      cur->name = rest;
      continue;
    }
    if (!cur.has_value())
      throw ParseError("'" + key + "' outside a cell block", lineNo);

    const bool heredoc = rest.size() >= 5 && rest.ends_with("<<END");
    if (heredoc)
      rest = std::string(util::trim(rest.substr(0, rest.size() - 5)));

    if (key == "library") cur->library = rest;
    else if (key == "category1") cur->category1 = rest;
    else if (key == "category2") cur->category2 = rest;
    else if (key == "symbol") cur->symbol = rest;
    else if (key == "author") cur->author = rest;
    else if (key == "registered") cur->registeredOn = rest;
    else if (key == "reuse_count") cur->reuseCount = std::stoi(rest);
    else if (key == "keywords") cur->keywords = util::split(rest, ",");
    else if (key == "ports") cur->ports = util::split(rest, " \t");
    else if (key == "document") cur->document = readHeredoc();
    else if (key == "schematic") cur->schematic = readHeredoc();
    else if (key == "behavioral") cur->behavioral = readHeredoc();
    else if (key == "simdata") cur->simulationData[rest] = readHeredoc();
    else if (key == "end") {
      db.registerCell(std::move(*cur));
      cur.reset();
    } else {
      throw ParseError("unknown cell field '" + key + "'", lineNo);
    }
  }
  if (cur.has_value()) throw ParseError("missing final 'end'", lineNo);

  // Trim whitespace that crept into keyword lists.
  for (auto& c : db.cells_)
    for (auto& k : c.keywords) k = std::string(util::trim(k));
  return db;
}

void CellDatabase::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw Error("cannot write cell database to '" + path + "'");
  os << toText();
}

CellDatabase CellDatabase::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot read cell database from '" + path + "'");
  std::ostringstream ss;
  ss << is.rdbuf();
  return fromText(ss.str());
}

// ---- WWW view ----

std::string CellDatabase::toHtml() const {
  // Static flavour of the shared renderer (celldb/html.h); ahficd serves
  // the same pages live with HtmlOptions::liveLinks.
  return libraryIndexHtml(*this);
}

void instantiateCell(spice::Circuit& ckt, const Cell& cell,
                     const std::string& instanceName,
                     const std::vector<std::string>& nodes) {
  if (cell.ports.empty())
    throw Error("instantiateCell: cell '" + cell.key() +
                "' declares no ports");
  if (nodes.size() != cell.ports.size())
    throw Error("instantiateCell: cell '" + cell.key() + "' has " +
                std::to_string(cell.ports.size()) + " ports, got " +
                std::to_string(nodes.size()));

  // Split the schematic into control cards (.MODEL etc., which must stay
  // at deck top level) and element lines (which go inside the subcircuit
  // wrapper). '+' continuations follow their opening line.
  std::string controls, elements;
  bool lastWasControl = false;
  std::istringstream is(cell.schematic);
  std::string line;
  while (std::getline(is, line)) {
    const auto t = util::trim(line);
    const bool continuation = !t.empty() && t.front() == '+';
    const bool control = (!t.empty() && t.front() == '.') ||
                         (continuation && lastWasControl);
    if (control) {
      controls += line;
      controls += '\n';
      lastWasControl = true;
    } else {
      elements += line;
      elements += '\n';
      if (!t.empty()) lastWasControl = false;
    }
  }

  const std::string subName = "cell_" + cell.library + "_" + cell.name;
  std::string deck = controls;
  deck += ".SUBCKT " + subName;
  for (const auto& port : cell.ports) deck += " " + port;
  deck += '\n';
  deck += elements;
  deck += ".ENDS\n";
  deck += instanceName;
  if (instanceName.empty() || (instanceName[0] != 'X' &&
                               instanceName[0] != 'x'))
    throw Error("instantiateCell: instance name must start with 'X'");
  for (const auto& node : nodes) deck += " " + node;
  deck += " " + subName + "\n";
  spice::parseInto(ckt, deck);
}

}  // namespace ahfic::celldb
