#pragma once
// Example cell library seeding: populates a database with the paper's
// Fig. 6 taxonomy (TV / TVR libraries, Croma / Video / Deflection
// categories, ACC / Color control / ... subcategories) and working
// circuit content — every schematic parses and simulates.

#include "celldb/database.h"

namespace ahfic::celldb {

/// Registers the example cells; returns the number added.
size_t seedExampleLibrary(CellDatabase& db);

}  // namespace ahfic::celldb
