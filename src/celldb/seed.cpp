#include "celldb/seed.h"

namespace ahfic::celldb {

namespace {

const char* kNpnModel =
    ".MODEL nref NPN(IS=1e-16 BF=110 VAF=45 RB=200 RE=4 RC=30 CJE=12f "
    "CJC=15f TF=12p)\n";

Cell makeCell(const char* lib, const char* cat1, const char* cat2,
              const char* name, const char* symbol, const char* doc,
              std::string schematic, std::string behavioral = "") {
  Cell c;
  c.library = lib;
  c.category1 = cat1;
  c.category2 = cat2;
  c.name = name;
  c.symbol = symbol;
  c.document = doc;
  c.schematic = std::move(schematic);
  c.behavioral = std::move(behavioral);
  c.author = "library";
  c.registeredOn = "1995-06-01";
  return c;
}

}  // namespace

size_t seedExampleLibrary(CellDatabase& db) {
  const size_t before = db.size();

  // --- TV / Croma / ACC -------------------------------------------------
  {
    Cell c = makeCell(
        "TV", "Croma", "ACC", "ACC1", "acc",
        "Automatic colour control amplifier. Input signal is IN1 and "
        "IN2. DC voltage is 5 to 8 V. Output impedance is very low and "
        "input impedance is 50 ohm. This circuit operates like a gain "
        "controlled amp.",
        std::string(kNpnModel) +
            "VCC vcc 0 8\n"
            "RC1 vcc c1 2k\n"
            "RC2 vcc c2 2k\n"
            "Q1 c1 in1 e nref\n"
            "Q2 c2 in2 e nref\n"
            "IT e 0 1m\n",
        "module acc (in, out) {\n"
        "  parameter real gain = 10;\n"
        "  parameter real vsat = 1;\n"
        "  analog { V(out) <- vsat * tanh(gain * V(in) / vsat); }\n"
        "}\n");
    c.keywords = {"agc", "chroma", "gain control"};
    c.ports = {"in1", "in2", "c1", "c2"};
    c.simulationData["gain_sweep"] = "vctl,gain\n0.1,2.0\n0.5,6.5\n1.0,10\n";
    db.registerCell(std::move(c));
  }
  {
    Cell c = makeCell(
        "TV", "Croma", "ACC", "ACC2", "acc",
        "ACC amplifier variant with emitter degeneration for improved "
        "linearity at reduced gain.",
        std::string(kNpnModel) +
            "VCC vcc 0 8\n"
            "RC1 vcc c1 2k\n"
            "RC2 vcc c2 2k\n"
            "Q1 c1 in1 e1 nref\n"
            "Q2 c2 in2 e2 nref\n"
            "RE1 e1 e 100\n"
            "RE2 e2 e 100\n"
            "IT e 0 1m\n");
    c.keywords = {"agc", "chroma", "linear"};
    db.registerCell(std::move(c));
  }

  // --- TV / Croma / Color control ----------------------------------------
  {
    Cell c = makeCell(
        "TV", "Croma", "Color control", "GCA1", "gca",
        "Gain controlled amplifier used for TV video. A Gilbert-style "
        "variable gain stage; control voltage on node ctl steers the "
        "tail current.",
        std::string(kNpnModel) +
            "VCC vcc 0 8\n"
            "RL1 vcc o1 1.5k\n"
            "RL2 vcc o2 1.5k\n"
            "Q1 o1 in1 e nref\n"
            "Q2 o2 in2 e nref\n"
            "Q3 e ctl t nref\n"
            "RT t 0 500\n",
        "module gca (in, ctl, out) {\n"
        "  parameter real maxgain = 8;\n"
        "  analog { V(out) <- maxgain * V(ctl) * V(in); }\n"
        "}\n");
    c.keywords = {"vga", "video", "gain"};
    db.registerCell(std::move(c));
  }
  {
    Cell c = makeCell(
        "TV", "Croma", "Color limitter", "CLIM1", "clim",
        "Colour signal limiter: back-to-back diode clamp with buffer.",
        ".MODEL dlim D(IS=1e-14)\n"
        "RIN in x 1k\n"
        "D1 x 0 dlim\n"
        "D2 0 x dlim\n",
        "module clim (in, out) {\n"
        "  parameter real level = 0.65;\n"
        "  analog { V(out) <- max(min(V(in), level), -level); }\n"
        "}\n");
    c.keywords = {"limiter", "clamp"};
    db.registerCell(std::move(c));
  }

  // --- TV / Video --------------------------------------------------------
  {
    Cell c = makeCell(
        "TV", "Video", "Buffer", "EF1", "ef",
        "Emitter follower output buffer. Very low output impedance; "
        "drives 150 ohm loads.",
        std::string(kNpnModel) +
            "VCC vcc 0 8\n"
            "Q1 vcc in out nref\n"
            "RE out 0 1k\n",
        "module ef (in, out) {\n"
        "  analog { V(out) <- V(in) - 0.75; }\n"
        "}\n");
    c.keywords = {"buffer", "follower", "output"};
    c.ports = {"in", "out"};
    db.registerCell(std::move(c));
  }
  {
    Cell c = makeCell(
        "TV", "Video", "Clamp", "CLAMP1", "clamp",
        "DC restoration clamp for the video path.",
        ".MODEL dcl D(IS=1e-14)\n"
        "CIN in x 100n\n"
        "D1 0 x dcl\n"
        "RB x 0 100k\n");
    c.keywords = {"clamp", "dc restore"};
    db.registerCell(std::move(c));
  }

  // --- TV / Deflection ---------------------------------------------------
  {
    Cell c = makeCell(
        "TV", "Deflection", "Ramp", "RAMP1", "ramp",
        "Horizontal deflection ramp generator (RC integrator driven by a "
        "switching source).",
        "VSW in 0 PULSE(0 5 0 10n 10n 30u 64u)\n"
        "R1 in x 10k\n"
        "C1 x 0 1n\n");
    c.keywords = {"deflection", "ramp", "sawtooth"};
    db.registerCell(std::move(c));
  }

  // --- TVR / IF ------------------------------------------------------------
  {
    Cell c = makeCell(
        "TVR", "IF", "Mixer", "MIX1", "mix",
        "Double-balanced mixer core (Gilbert cell) for IF conversion.",
        std::string(kNpnModel) +
            "VCC vcc 0 8\n"
            "RL1 vcc o1 1k\n"
            "RL2 vcc o2 1k\n"
            "Q1 o1 loP a nref\n"
            "Q2 o2 loN a nref\n"
            "Q3 o2 loP b nref\n"
            "Q4 o1 loN b nref\n"
            "Q5 a rfP e nref\n"
            "Q6 b rfN e nref\n"
            "IT e 0 2m\n",
        "module mix (a, b, out) {\n"
        "  parameter real gain = 1;\n"
        "  analog { V(out) <- gain * V(a) * V(b); }\n"
        "}\n");
    c.keywords = {"mixer", "gilbert", "converter"};
    c.ports = {"rfP", "rfN", "loP", "loN", "o1", "o2"};
    db.registerCell(std::move(c));
  }
  {
    Cell c = makeCell(
        "TVR", "IF", "Oscillator", "VCO1", "vco",
        "Emitter-coupled multivibrator VCO core for the 2nd local "
        "oscillator; quadrature outputs derived from the timing "
        "capacitor.",
        std::string(kNpnModel) +
            "VCC vcc 0 5\n"
            "R1 vcc c1 300\n"
            "R2 vcc c2 300\n"
            "Q1 c1 c2 e1 nref\n"
            "Q2 c2 c1 e2 nref\n"
            "CT e1 e2 10p\n"
            "I1 e1 0 1m\n"
            "I2 e2 0 1m\n",
        "module vco (i, q) {\n"
        "  parameter real freq = 1.255e9;\n"
        "  analog {\n"
        "    V(i) <- cos(2*pi*freq*t);\n"
        "    V(q) <- sin(2*pi*freq*t);\n"
        "  }\n"
        "}\n");
    c.keywords = {"vco", "oscillator", "quadrature"};
    db.registerCell(std::move(c));
  }
  {
    Cell c = makeCell(
        "TVR", "IF", "Opamp", "OTA1", "ota",
        "Five-transistor operational transconductance amplifier with PNP "
        "current-mirror load and emitter-follower output. Open-loop "
        "differential gain well above 40 dB; inputs bias near VCC/2.",
        std::string(kNpnModel) +
            ".MODEL pref PNP(IS=1e-16 BF=50 VAF=30 RB=300 RE=6 RC=50 "
            "CJE=14f CJC=18f TF=80p)\n"
            "VCC vcc 0 8\n"
            "Q3 o1 o1 vcc pref\n"
            "Q4 o2 o1 vcc pref\n"
            "Q1 o1 inp e nref\n"
            "Q2 o2 inn e nref\n"
            "IT e 0 0.5m\n"
            "Q5 vcc o2 out nref\n"
            "RO out 0 5k\n",
        "module ota (inp, inn, out) {\n"
        "  parameter real gain = 300;\n"
        "  parameter real vsat = 3;\n"
        "  analog { V(out) <- vsat * tanh(gain * (V(inp) - V(inn)) / vsat); }\n"
        "}\n");
    c.keywords = {"opamp", "ota", "amplifier"};
    c.ports = {"inp", "inn", "out"};
    db.registerCell(std::move(c));
  }
  {
    Cell c = makeCell(
        "TVR", "IF", "Phase shifter", "PS90", "ps90",
        "90 degree phase shifter for the image rejection combiner; RC-CR "
        "bridge at the 2nd IF.",
        "RIN in a 1k\n"
        "C1 a 0 3.5p\n"
        "C2 in b 3.5p\n"
        "R2 b 0 1k\n");
    c.keywords = {"phase", "quadrature", "image rejection"};
    db.registerCell(std::move(c));
  }

  return db.size() - before;
}

}  // namespace ahfic::celldb
