#pragma once
// The analog cell record of the paper's Fig. 7: schematic, behavioural
// description, symbol, documentation and simulation data, organised as
// Library -> Category1 -> Category2 -> Cell (Fig. 6).

#include <map>
#include <string>
#include <vector>

namespace ahfic::celldb {

/// One re-usable analog circuit, as stored by the Analog Cell-based
/// Design Supporting System.
struct Cell {
  // Identity and taxonomy (Fig. 6).
  std::string name;       ///< cell name, e.g. "ACC1"
  std::string library;    ///< application field, e.g. "TV"
  std::string category1;  ///< e.g. "Croma"
  std::string category2;  ///< e.g. "ACC"

  // Content (Fig. 7).
  std::string document;    ///< operation description for the re-user
  std::string schematic;   ///< primitive-element SPICE netlist body
  std::string behavioral;  ///< AHDL module definition (optional)
  std::string symbol;      ///< block symbol name for top-down schematics
  std::map<std::string, std::string> simulationData;  ///< name -> data

  /// External connection nodes of the schematic, in symbol order. When
  /// non-empty the cell can be dropped into a host circuit as a
  /// subcircuit (see instantiateCell in database.h).
  std::vector<std::string> ports;

  // Search aids and provenance.
  std::vector<std::string> keywords;
  std::string author;
  std::string registeredOn;  ///< ISO date string

  // Re-use bookkeeping.
  int reuseCount = 0;

  /// "library/name" — the unique key within a database.
  std::string key() const { return library + "/" + name; }
};

}  // namespace ahfic::celldb
