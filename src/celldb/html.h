#pragma once
// HTML renderers for the cell database's WWW view (paper Sec. 3).
//
// One renderer, two front-ends: CellDatabase::toHtml() emits the static
// report and ahficd serves the same pages live (GET /celldb,
// GET /celldb/cell/<library>/<name>). Everything user-controlled — cell
// names, documents, schematics — passes through escapeHtml, including
// quotes, so cell content can never inject markup or break out of an
// attribute.

#include <string>

namespace ahfic::celldb {

struct Cell;
class CellDatabase;

/// Escapes `<`, `>`, `&`, `"` and `'` for safe embedding in HTML text
/// and attribute values.
std::string escapeHtml(const std::string& s);

/// Rendering knobs shared by the static generator and the live server.
struct HtmlOptions {
  /// When true, cell names in the index link to their per-cell pages
  /// under `cellPathPrefix` ("<prefix><library>/<name>").
  bool liveLinks = false;
  std::string cellPathPrefix = "/celldb/cell/";
};

/// One cell as an HTML fragment (the body of an index entry or a cell
/// page): name, taxonomy, document, collapsible schematic/behavioural
/// views, provenance. No surrounding <html>.
std::string cellToHtml(const Cell& cell);

/// One cell as a standalone page (<!DOCTYPE html> ... </html>), with a
/// back link to the index when `opts.liveLinks` is set.
std::string cellPageHtml(const Cell& cell, const HtmlOptions& opts = {});

/// The browsable library index: stats banner, then
/// library -> category -> cells. This is what toHtml() returns (static
/// flavour) and what GET /celldb serves (liveLinks flavour).
std::string libraryIndexHtml(const CellDatabase& db,
                             const HtmlOptions& opts = {});

}  // namespace ahfic::celldb
