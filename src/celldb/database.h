#pragma once
// The Analog Cell-based Design Supporting System (paper Sec. 3).
//
// Two faces, as in the paper: a *registration* side for designers who
// contribute circuits (with content validation — the schematic must be a
// parsable SPICE body and the behavioural view a parsable AHDL module),
// and a *search/copy* side for designers re-using them. A static-HTML
// report reproduces the "library of circuits by a WWW server" view.
//
// Persistence is a line-oriented text format with heredoc blocks, designed
// to diff well under version control:
//
//   cell ACC1
//   library TV
//   category1 Croma
//   category2 ACC
//   keywords agc, chroma
//   author tanaka
//   registered 1995-06-01
//   reuse_count 3
//   document <<END
//   ...
//   END
//   schematic <<END
//   ...
//   END
//   end

#include <optional>
#include <string>
#include <vector>

#include "celldb/cell.h"
#include "spice/circuit.h"

namespace ahfic::celldb {

/// Aggregate statistics for the Sec. 3 re-use claims.
struct DatabaseStats {
  size_t cellCount = 0;
  size_t libraryCount = 0;
  int totalCheckouts = 0;
  size_t cellsWithBehavioralView = 0;
  size_t cellsWithSimulationData = 0;
};

/// In-memory cell store with text-file persistence.
class CellDatabase {
 public:
  CellDatabase() = default;

  // ---- registration side ----

  /// Registers a cell after validating identity fields and content: a
  /// non-empty schematic must parse as a SPICE netlist body, a non-empty
  /// behavioural view as an AHDL netlist. Throws ahfic::Error on invalid
  /// cells or duplicate library/name keys.
  void registerCell(Cell cell);

  /// Replaces an existing cell (same key must exist).
  void updateCell(Cell cell);

  /// Removes a cell; returns false when it did not exist.
  bool removeCell(const std::string& library, const std::string& name);

  // ---- search / re-use side ----

  const Cell* find(const std::string& library,
                   const std::string& name) const;

  /// All cells of a library, optionally filtered by categories.
  std::vector<const Cell*> byCategory(const std::string& library,
                                      const std::string& category1 = "",
                                      const std::string& category2 = "") const;

  /// Case-insensitive keyword search over name, categories, keywords and
  /// document text.
  std::vector<const Cell*> search(const std::string& query) const;

  /// Copy-for-reuse: returns a copy of the cell and increments its re-use
  /// counter. Throws when the cell is absent.
  Cell checkout(const std::string& library, const std::string& name);

  /// Distinct library names, sorted.
  std::vector<std::string> libraries() const;
  /// Distinct category1 values within a library, sorted.
  std::vector<std::string> categories(const std::string& library) const;
  /// Distinct category2 values within library/category1, sorted.
  std::vector<std::string> subcategories(const std::string& library,
                                         const std::string& category1) const;

  size_t size() const { return cells_.size(); }
  const std::vector<Cell>& cells() const { return cells_; }

  DatabaseStats stats() const;

  // ---- persistence ----

  std::string toText() const;
  static CellDatabase fromText(const std::string& text);
  void save(const std::string& path) const;
  static CellDatabase load(const std::string& path);

  // ---- WWW view ----

  /// Renders the browsable library page (paper's Toshiba WWW server):
  /// library -> category tree with per-cell documents and schematics.
  std::string toHtml() const;

 private:
  int indexOf(const std::string& library, const std::string& name) const;
  std::vector<Cell> cells_;
};

/// Splices a checked-out cell into a host circuit as a subcircuit: the
/// cell's schematic becomes a .SUBCKT over its declared ports, connected
/// to `nodes` (host node names, same order as cell.ports). Devices land
/// in the host with "instanceName." prefixes. Throws ahfic::Error when
/// the cell declares no ports or the arity mismatches.
void instantiateCell(spice::Circuit& ckt, const Cell& cell,
                     const std::string& instanceName,
                     const std::vector<std::string>& nodes);

}  // namespace ahfic::celldb
