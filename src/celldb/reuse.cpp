#include "celldb/reuse.h"

#include <cmath>
#include <set>
#include <string>

#include "util/error.h"
#include "util/numeric.h"

namespace ahfic::celldb {

double ReuseStudyResult::steadyStateReuseRatio() const {
  if (projects.empty()) return 0.0;
  int needed = 0, reused = 0;
  for (size_t i = projects.size() / 2; i < projects.size(); ++i) {
    needed += projects[i].blocksNeeded;
    reused += projects[i].blocksReused;
  }
  return needed == 0 ? 0.0 : static_cast<double>(reused) / needed;
}

namespace {

/// Names the synthetic block kinds: kind k lives in a category derived
/// from k so the database keeps a meaningful taxonomy.
struct BlockKind {
  std::string name;
  std::string category1;
  std::string category2;
};

BlockKind kindOf(int k) {
  static const char* kCat1[] = {"RF", "IF", "Video", "Audio", "Power"};
  static const char* kCat2[] = {"Amp", "Mixer", "Filter", "Osc", "Bias",
                                "Buffer"};
  BlockKind b;
  b.category1 = kCat1[k % 5];
  b.category2 = kCat2[(k / 5) % 6];
  b.name = std::string(b.category2) + "_" + std::to_string(k);
  return b;
}

/// A minimal always-valid schematic body for a newly designed block.
std::string stubSchematic(int k) {
  return "R1 in out " + std::to_string(100 + k) + "\nC1 out 0 1p\n";
}

}  // namespace

ReuseStudyResult runReuseStudy(CellDatabase& db, const ReuseSimConfig& cfg) {
  if (cfg.projects < 1 || cfg.distinctBlockKinds < 1 ||
      cfg.blocksPerProjectMin < 1 ||
      cfg.blocksPerProjectMax < cfg.blocksPerProjectMin)
    throw Error("runReuseStudy: bad configuration");

  util::Rng rng(cfg.seed);

  // Zipf-like popularity weights over block kinds.
  std::vector<double> cdf(static_cast<size_t>(cfg.distinctBlockKinds));
  double acc = 0.0;
  for (int k = 0; k < cfg.distinctBlockKinds; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), cfg.popularitySkew);
    cdf[static_cast<size_t>(k)] = acc;
  }
  auto drawKind = [&]() {
    const double u = rng.uniform() * acc;
    for (int k = 0; k < cfg.distinctBlockKinds; ++k)
      if (u <= cdf[static_cast<size_t>(k)]) return k;
    return cfg.distinctBlockKinds - 1;
  };

  const std::string lib = "ReuseStudy";
  ReuseStudyResult result;

  for (int p = 0; p < cfg.projects; ++p) {
    const int span = cfg.blocksPerProjectMax - cfg.blocksPerProjectMin + 1;
    const int nBlocks =
        cfg.blocksPerProjectMin +
        static_cast<int>(rng.next(static_cast<std::uint64_t>(span)));

    // A project needs distinct kinds.
    std::set<int> kinds;
    int guard = 0;
    while (static_cast<int>(kinds.size()) < nBlocks &&
           ++guard < nBlocks * 50)
      kinds.insert(drawKind());

    ProjectOutcome outcome;
    outcome.blocksNeeded = static_cast<int>(kinds.size());
    for (int k : kinds) {
      const BlockKind bk = kindOf(k);
      if (db.find(lib, bk.name) != nullptr) {
        db.checkout(lib, bk.name);
        ++outcome.blocksReused;
      } else {
        Cell c;
        c.library = lib;
        c.name = bk.name;
        c.category1 = bk.category1;
        c.category2 = bk.category2;
        c.document = "Synthesised during project " + std::to_string(p);
        c.schematic = stubSchematic(k);
        c.author = "project" + std::to_string(p);
        c.registeredOn = "1995-01-01";
        db.registerCell(std::move(c));
        ++outcome.blocksNewlyDesigned;
      }
    }
    result.totalNeeded += outcome.blocksNeeded;
    result.totalReused += outcome.blocksReused;
    result.projects.push_back(outcome);
  }
  return result;
}

}  // namespace ahfic::celldb
