#pragma once
// Physicality checks on SPICE model cards and bjtgen-generated card
// sweeps. A generator bug (Sec. 4's geometry engine gone wrong) produces
// cards that still converge and yield plausible-looking fT curves; these
// rules make such runs fail loudly instead.
//
// Codes:
//   MOD_BJT_RANGE      parameter outside its physical domain (error)
//   MOD_BJT_SUSPECT    parameter legal but far outside device physics
//                      for an IC transistor (warning)
//   MOD_DIODE_RANGE    diode equivalents of the above (error)
//   MOD_DIODE_SUSPECT  (warning)
//   MOD_NONMONOTONE    a geometry-scaled parameter (CJE, CJC, IS) fails
//                      to grow monotonically with emitter area across a
//                      generated shape sweep (error — the generator is
//                      emitting nonsense)

#include <string>
#include <vector>

#include "bjtgen/generator.h"
#include "bjtgen/shape.h"
#include "lint/diagnostics.h"
#include "spice/models.h"

namespace ahfic::lint {

/// Appends range/physicality diagnostics for one BJT card named `name`.
void lintBjtModel(const spice::BjtModel& model, const std::string& name,
                  LintReport& report);

/// Appends range/physicality diagnostics for one diode card.
void lintDiodeModel(const spice::DiodeModel& model, const std::string& name,
                    LintReport& report);

/// Convenience: a fresh report with just one card's diagnostics.
LintReport lintBjtModel(const spice::BjtModel& model,
                        const std::string& name);

/// Generates a card per shape and checks (a) each card's physicality and
/// (b) that CJE, CJC and IS grow monotonically with emitter area across
/// the sweep (shapes are sorted by area internally). Use the Fig. 8 shape
/// set to validate a generator before trusting its Fig. 9/Table 1 output.
LintReport lintGeneratedSweep(const bjtgen::ModelGenerator& gen,
                              const std::vector<bjtgen::TransistorShape>& shapes);

}  // namespace ahfic::lint
