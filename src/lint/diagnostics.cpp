#include "lint/diagnostics.h"

#include "util/error.h"

namespace ahfic::lint {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "unknown";
}

namespace {

Severity severityFromName(const std::string& name) {
  if (name == "error") return Severity::kError;
  if (name == "warning") return Severity::kWarning;
  if (name == "info") return Severity::kInfo;
  throw Error("LintReport: unknown severity '" + name + "'");
}

}  // namespace

void LintReport::add(Severity severity, std::string code, std::string message,
                     SourceLoc loc) {
  diags_.push_back(Diagnostic{severity, std::move(code), std::move(message),
                              std::move(loc)});
}

void LintReport::error(std::string code, std::string message, SourceLoc loc) {
  add(Severity::kError, std::move(code), std::move(message), std::move(loc));
}

void LintReport::warning(std::string code, std::string message,
                         SourceLoc loc) {
  add(Severity::kWarning, std::move(code), std::move(message),
      std::move(loc));
}

void LintReport::info(std::string code, std::string message, SourceLoc loc) {
  add(Severity::kInfo, std::move(code), std::move(message), std::move(loc));
}

void LintReport::merge(const LintReport& other, const std::string& file) {
  for (const Diagnostic& d : other.diags_) {
    diags_.push_back(d);
    if (!file.empty() && diags_.back().loc.file.empty())
      diags_.back().loc.file = file;
  }
}

size_t LintReport::count(Severity s) const {
  size_t n = 0;
  for (const auto& d : diags_)
    if (d.severity == s) ++n;
  return n;
}

bool LintReport::hasCode(const std::string& code) const {
  return find(code) != nullptr;
}

const Diagnostic* LintReport::find(const std::string& code) const {
  for (const auto& d : diags_)
    if (d.code == code) return &d;
  return nullptr;
}

std::string LintReport::renderText() const {
  std::string out;
  for (const auto& d : diags_) {
    if (!d.loc.file.empty()) {
      out += d.loc.file;
      out += ':';
    }
    if (d.loc.line >= 0) {
      out += std::to_string(d.loc.line);
      out += ':';
    }
    if (!d.loc.file.empty() || d.loc.line >= 0) out += ' ';
    out += severityName(d.severity);
    out += ' ';
    out += d.code;
    out += ": ";
    out += d.message;
    if (!d.loc.object.empty()) {
      out += " [";
      out += d.loc.object;
      out += ']';
    }
    out += '\n';
  }
  return out;
}

std::string LintReport::summaryLine(size_t maxItems) const {
  const size_t errors = errorCount();
  std::string out = std::to_string(errors) + " lint error(s)";
  size_t shown = 0;
  for (const auto& d : diags_) {
    if (d.severity != Severity::kError) continue;
    if (shown == maxItems) {
      out += "; ...";
      break;
    }
    out += shown == 0 ? ": " : "; ";
    out += d.code;
    if (!d.loc.object.empty()) {
      out += ' ';
      out += d.loc.object;
    }
    ++shown;
  }
  return out;
}

util::JsonValue LintReport::toJson() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "ahfic-lint-v1");

  util::JsonValue counts = util::JsonValue::object();
  counts.set("error", static_cast<double>(count(Severity::kError)));
  counts.set("warning", static_cast<double>(count(Severity::kWarning)));
  counts.set("info", static_cast<double>(count(Severity::kInfo)));
  doc.set("counts", std::move(counts));

  util::JsonValue arr = util::JsonValue::array();
  for (const auto& d : diags_) {
    util::JsonValue e = util::JsonValue::object();
    e.set("severity", severityName(d.severity));
    e.set("code", d.code);
    e.set("message", d.message);
    util::JsonValue loc = util::JsonValue::object();
    if (!d.loc.file.empty()) loc.set("file", d.loc.file);
    if (d.loc.line >= 0) loc.set("line", d.loc.line);
    if (!d.loc.object.empty()) loc.set("object", d.loc.object);
    e.set("loc", std::move(loc));
    arr.push(std::move(e));
  }
  doc.set("diagnostics", std::move(arr));
  return doc;
}

std::string LintReport::toJsonString(int indent) const {
  return toJson().dump(indent);
}

LintReport LintReport::fromJson(const util::JsonValue& doc) {
  if (!doc.isObject() || !doc.has("schema") ||
      doc.get("schema").asString() != "ahfic-lint-v1")
    throw Error("LintReport::fromJson: not an ahfic-lint-v1 document");
  LintReport report;
  const util::JsonValue& arr = doc.get("diagnostics");
  for (size_t k = 0; k < arr.size(); ++k) {
    const util::JsonValue& e = arr.at(k);
    Diagnostic d;
    d.severity = severityFromName(e.get("severity").asString());
    d.code = e.get("code").asString();
    d.message = e.get("message").asString();
    const util::JsonValue& loc = e.get("loc");
    if (loc.has("file")) d.loc.file = loc.get("file").asString();
    if (loc.has("line"))
      d.loc.line = static_cast<int>(loc.get("line").asNumber());
    if (loc.has("object")) d.loc.object = loc.get("object").asString();
    report.diags_.push_back(std::move(d));
  }
  return report;
}

}  // namespace ahfic::lint
