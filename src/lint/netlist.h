#pragma once
// Static netlist/topology checks on spice::Circuit — no solver invocation.
//
// The analyzers predict, in O(devices * alpha) time, the failure modes
// that otherwise surface as Newton non-convergence deep inside the
// runner's retry ladder:
//
//   NET_DANGLING_NODE  node with exactly one device terminal attached
//   NET_DISCONNECTED   node in a component with no path to ground at all
//   NET_NO_DC_PATH     node with no DC-conductive path to ground
//                      (capacitor-isolated, current-source-fed, MOS gate)
//                      -> singular OP matrix
//   NET_VSRC_LOOP      loop of voltage-defining branches containing a
//                      V source / VCVS / CCVS -> singular MNA matrix
//   NET_IND_LOOP       loop of inductors only (DC shorts) -> singular OP
//   NET_ISRC_CUTSET    node fed exclusively by current sources -> KCL
//                      overdetermined, singular MNA matrix
//   NET_ZERO_CAP       zero-valued capacitor (legal, never does anything)
//   NET_UNUSED_AC      source carries an AC spec but the deck requests no
//                      .AC/.NOISE analysis
//   NET_UNUSED_TRAN    source carries a time-varying waveform but the
//                      deck requests no .TRAN analysis
//   NET_NO_AC_SOURCE   .AC/.NOISE requested but no source has AC != 0
//
// Zero/negative R and L values and duplicate device names cannot occur in
// a constructed Circuit (the constructors and Circuit::addDevice throw);
// lintDeckText reports those construction failures as PARSE diagnostics.
//
// Diagnostics point at the deck line when the circuit came from the
// parser (Circuit::deviceLine), at the device/node name otherwise.

#include <string>

#include "lint/diagnostics.h"
#include "spice/parser.h"

namespace ahfic::lint {

/// Topology + model-card checks on one circuit.
LintReport lintCircuit(const spice::Circuit& circuit);

/// lintCircuit plus analysis-spec cross checks (unused AC/TRAN specs).
LintReport lintDeck(const spice::Deck& deck);

/// Parses `text` as a full deck and lints it; parse and construction
/// failures become PARSE diagnostics instead of exceptions, so a lint
/// pass never throws on bad input.
LintReport lintDeckText(const std::string& text);

}  // namespace ahfic::lint
