#include "lint/modelcard.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ahfic::lint {

namespace {

std::string fmt(double v) {
  std::ostringstream ss;
  ss << v;
  return ss.str();
}

/// Rule helper bound to one card: emits "<card>: <param> = <value> ..."
struct CardRules {
  LintReport& report;
  const std::string& card;
  const char* rangeCode;
  const char* suspectCode;

  void check(bool ok, const char* param, double value,
             const char* requirement, bool suspectOnly = false) const {
    if (ok) return;
    const std::string msg = "model '" + card + "': " + param + " = " +
                            fmt(value) + " " + requirement;
    if (suspectOnly)
      report.warning(suspectCode, msg, SourceLoc::forObject(card));
    else
      report.error(rangeCode, msg, SourceLoc::forObject(card));
  }
};

}  // namespace

void lintBjtModel(const spice::BjtModel& m, const std::string& name,
                  LintReport& report) {
  const CardRules r{report, name, "MOD_BJT_RANGE", "MOD_BJT_SUSPECT"};

  // Hard physical domains: violating any of these is not a transistor.
  r.check(m.is > 0.0, "IS", m.is, "must be > 0 (saturation current)");
  r.check(m.bf > 0.0, "BF", m.bf, "must be > 0 (forward beta)");
  r.check(m.br > 0.0, "BR", m.br, "must be > 0 (reverse beta)");
  r.check(m.nf > 0.0, "NF", m.nf, "must be > 0 (emission coefficient)");
  r.check(m.nr > 0.0, "NR", m.nr, "must be > 0 (emission coefficient)");
  r.check(m.ne > 0.0, "NE", m.ne, "must be > 0 (emission coefficient)");
  r.check(m.nc > 0.0, "NC", m.nc, "must be > 0 (emission coefficient)");
  r.check(m.rb >= 0.0, "RB", m.rb, "must be >= 0 (base resistance)");
  r.check(m.rbm >= 0.0, "RBM", m.rbm, "must be >= 0");
  r.check(m.re >= 0.0, "RE", m.re, "must be >= 0 (emitter resistance)");
  r.check(m.rc >= 0.0, "RC", m.rc, "must be >= 0 (collector resistance)");
  r.check(m.irb >= 0.0, "IRB", m.irb, "must be >= 0");
  r.check(m.cje >= 0.0, "CJE", m.cje, "must be >= 0 (capacitance)");
  r.check(m.cjc >= 0.0, "CJC", m.cjc, "must be >= 0 (capacitance)");
  r.check(m.cjs >= 0.0, "CJS", m.cjs, "must be >= 0 (capacitance)");
  r.check(m.vje > 0.0, "VJE", m.vje, "must be > 0 (built-in potential)");
  r.check(m.vjc > 0.0, "VJC", m.vjc, "must be > 0 (built-in potential)");
  r.check(m.vjs > 0.0, "VJS", m.vjs, "must be > 0 (built-in potential)");
  r.check(m.mje > 0.0 && m.mje < 1.0, "MJE", m.mje,
          "must be in (0, 1) (grading coefficient)");
  r.check(m.mjc > 0.0 && m.mjc < 1.0, "MJC", m.mjc,
          "must be in (0, 1) (grading coefficient)");
  r.check(m.mjs > 0.0 && m.mjs < 1.0, "MJS", m.mjs,
          "must be in (0, 1) (grading coefficient)");
  r.check(m.fc >= 0.0 && m.fc < 1.0, "FC", m.fc, "must be in [0, 1)");
  r.check(m.xcjc >= 0.0 && m.xcjc <= 1.0, "XCJC", m.xcjc,
          "must be in [0, 1] (fraction of CJC)");
  r.check(m.tf >= 0.0, "TF", m.tf, "must be >= 0 (transit time)");
  r.check(m.tr >= 0.0, "TR", m.tr, "must be >= 0 (transit time)");
  r.check(m.vaf >= 0.0, "VAF", m.vaf, "must be >= 0 (0 = infinite)");
  r.check(m.var >= 0.0, "VAR", m.var, "must be >= 0 (0 = infinite)");
  r.check(m.ikf >= 0.0, "IKF", m.ikf, "must be >= 0 (0 = none)");
  r.check(m.ikr >= 0.0, "IKR", m.ikr, "must be >= 0 (0 = none)");
  r.check(m.ise >= 0.0, "ISE", m.ise, "must be >= 0 (0 = none)");
  r.check(m.isc >= 0.0, "ISC", m.isc, "must be >= 0 (0 = none)");
  r.check(m.eg > 0.0, "EG", m.eg, "must be > 0 (bandgap energy)");

  // Plausibility for an IC bipolar: generator outputs beyond these are
  // almost certainly scaling bugs, not exotic devices.
  if (m.is > 0.0)
    r.check(m.is <= 1e-6, "IS", m.is,
            "exceeds 1 uA: saturation currents of IC transistors are "
            "orders of magnitude smaller (generator bug?)",
            /*suspectOnly=*/true);
  if (m.bf > 0.0)
    r.check(m.bf <= 5000.0, "BF", m.bf, "exceeds 5000 (suspect)",
            /*suspectOnly=*/true);
  if (m.nf > 0.0)
    r.check(m.nf >= 0.5 && m.nf <= 4.0, "NF", m.nf,
            "outside [0.5, 4] (suspect emission coefficient)",
            /*suspectOnly=*/true);
  if (m.cje >= 0.0)
    r.check(m.cje <= 1e-9, "CJE", m.cje,
            "exceeds 1 nF: implausible junction capacitance for an IC "
            "transistor (generator bug?)",
            /*suspectOnly=*/true);
  if (m.cjc >= 0.0)
    r.check(m.cjc <= 1e-9, "CJC", m.cjc,
            "exceeds 1 nF: implausible junction capacitance (suspect)",
            /*suspectOnly=*/true);
  if (m.tf >= 0.0)
    r.check(m.tf <= 1e-6, "TF", m.tf,
            "exceeds 1 us: implausible transit time (suspect)",
            /*suspectOnly=*/true);
  if (m.rbm >= 0.0 && m.rb >= 0.0)
    r.check(m.rbm <= m.rb || m.rbm == 0.0, "RBM", m.rbm,
            "exceeds RB: the high-current minimum base resistance cannot "
            "be larger than the zero-bias value",
            /*suspectOnly=*/true);
}

void lintDiodeModel(const spice::DiodeModel& m, const std::string& name,
                    LintReport& report) {
  const CardRules r{report, name, "MOD_DIODE_RANGE", "MOD_DIODE_SUSPECT"};
  r.check(m.is > 0.0, "IS", m.is, "must be > 0 (saturation current)");
  r.check(m.n > 0.0, "N", m.n, "must be > 0 (emission coefficient)");
  r.check(m.rs >= 0.0, "RS", m.rs, "must be >= 0 (series resistance)");
  r.check(m.cj0 >= 0.0, "CJO", m.cj0, "must be >= 0 (capacitance)");
  r.check(m.vj > 0.0, "VJ", m.vj, "must be > 0 (junction potential)");
  r.check(m.m > 0.0 && m.m < 1.0, "M", m.m,
          "must be in (0, 1) (grading coefficient)");
  r.check(m.tt >= 0.0, "TT", m.tt, "must be >= 0 (transit time)");
  r.check(m.fc >= 0.0 && m.fc < 1.0, "FC", m.fc, "must be in [0, 1)");
  r.check(m.bv >= 0.0, "BV", m.bv, "must be >= 0 (0 = none)");
  if (m.bv > 0.0)
    r.check(m.ibv > 0.0, "IBV", m.ibv,
            "must be > 0 when BV is set (breakdown current)");
  r.check(m.eg > 0.0, "EG", m.eg, "must be > 0 (bandgap energy)");
  if (m.n > 0.0)
    r.check(m.n >= 0.5 && m.n <= 4.0, "N", m.n,
            "outside [0.5, 4] (suspect emission coefficient)",
            /*suspectOnly=*/true);
  if (m.is > 0.0)
    r.check(m.is <= 1e-6, "IS", m.is, "exceeds 1 uA (suspect)",
            /*suspectOnly=*/true);
}

LintReport lintBjtModel(const spice::BjtModel& model,
                        const std::string& name) {
  LintReport report;
  lintBjtModel(model, name, report);
  return report;
}

LintReport lintGeneratedSweep(
    const bjtgen::ModelGenerator& gen,
    const std::vector<bjtgen::TransistorShape>& shapes) {
  LintReport report;
  if (shapes.empty()) return report;

  std::vector<bjtgen::TransistorShape> byArea = shapes;
  std::sort(byArea.begin(), byArea.end(),
            [](const auto& a, const auto& b) {
              return a.emitterArea() < b.emitterArea();
            });

  struct Point {
    std::string name;
    double area, cje, cjc, is;
  };
  std::vector<Point> pts;
  for (const auto& shape : byArea) {
    const spice::BjtModel card = gen.generate(shape);
    lintBjtModel(card, bjtgen::ModelGenerator::modelName(shape), report);
    pts.push_back({shape.name(), shape.emitterArea(), card.cje, card.cjc,
                   card.is});
  }

  // Junction capacitances and IS scale with junction area (+ perimeter):
  // a larger emitter must never shrink them. Equal-area shapes (e.g.
  // single vs double base at the same emitter) may reorder freely, so
  // only strictly growing area pairs are compared, with a 0.1% slack for
  // rounding in the geometry engine.
  auto requireMonotone = [&](const char* param, double Point::*field) {
    for (size_t k = 1; k < pts.size(); ++k) {
      if (pts[k].area <= pts[k - 1].area * (1.0 + 1e-9)) continue;
      const double prev = pts[k - 1].*field;
      const double cur = pts[k].*field;
      if (cur < prev * (1.0 - 1e-3)) {
        report.error(
            "MOD_NONMONOTONE",
            std::string("generated ") + param + " drops from " +
                fmt(prev) + " (" + pts[k - 1].name + ") to " + fmt(cur) +
                " (" + pts[k].name +
                ") although the emitter area grows: the geometry "
                "generator is emitting non-physical cards",
            SourceLoc::forObject(pts[k].name));
      }
    }
  };
  requireMonotone("CJE", &Point::cje);
  requireMonotone("CJC", &Point::cjc);
  requireMonotone("IS", &Point::is);
  return report;
}

}  // namespace ahfic::lint
