#pragma once
// Diagnostics engine for the pre-simulation static analyzers.
//
// Every analyzer family (netlist, model card, AHDL) appends Diagnostic
// records to a LintReport. A diagnostic carries a severity, a stable
// machine-readable code (the catalogue lives in docs/lint.md), a
// human-readable message and a SourceLoc naming where the problem is —
// the deck line when the parser knows it, otherwise the offending
// object (device, node, model, signal or block name).
//
// Severity policy:
//   kError   — the input is statically doomed: simulating it would yield
//              a singular matrix, a Newton blow-up, or garbage results.
//              Pre-flight gates (runner, --lint) reject on any error.
//   kWarning — legal but almost certainly not what the author meant
//              (zero capacitor, AC magnitude with no .AC card, ...).
//   kInfo    — observations that aid debugging; never gate anything.
//
// Reports render as text (one line per diagnostic, compiler style) and
// as the stable "ahfic-lint-v1" JSON document used by CI and tooling.

#include <string>
#include <vector>

#include "util/json.h"

namespace ahfic::lint {

enum class Severity { kError, kWarning, kInfo };

const char* severityName(Severity s);

/// Where a diagnostic points. All fields optional: `line` is -1 when no
/// deck line is known (e.g. programmatically built circuits), `file` is
/// empty unless a CLI attached one, `object` names the offending device,
/// node, model, signal or block.
struct SourceLoc {
  std::string file;
  int line = -1;
  std::string object;

  static SourceLoc forObject(std::string name) {
    SourceLoc loc;
    loc.object = std::move(name);
    return loc;
  }
  static SourceLoc forLine(int line, std::string object = {}) {
    SourceLoc loc;
    loc.line = line;
    loc.object = std::move(object);
    return loc;
  }
};

/// One finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     ///< stable identifier, e.g. "NET_VSRC_LOOP"
  std::string message;  ///< human-readable explanation
  SourceLoc loc;
};

/// An ordered collection of diagnostics with render helpers.
class LintReport {
 public:
  void add(Severity severity, std::string code, std::string message,
           SourceLoc loc = {});
  void error(std::string code, std::string message, SourceLoc loc = {});
  void warning(std::string code, std::string message, SourceLoc loc = {});
  void info(std::string code, std::string message, SourceLoc loc = {});

  /// Appends every diagnostic of `other`, stamping `file` into locations
  /// that do not carry a file yet (multi-file CLI merging).
  void merge(const LintReport& other, const std::string& file = {});

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  size_t count(Severity s) const;
  size_t errorCount() const { return count(Severity::kError); }
  bool hasErrors() const { return errorCount() > 0; }
  /// True when any diagnostic carries `code`.
  bool hasCode(const std::string& code) const;
  /// First diagnostic with `code`, or nullptr.
  const Diagnostic* find(const std::string& code) const;

  /// Compiler-style text: "file:line: severity CODE: message [object]".
  std::string renderText() const;
  /// One-line digest for job records: "N error(s): CODE obj; CODE obj".
  std::string summaryLine(size_t maxItems = 3) const;

  /// The stable "ahfic-lint-v1" document.
  util::JsonValue toJson() const;
  std::string toJsonString(int indent = 2) const;
  /// Inverse of toJson; throws ahfic::Error on schema mismatch.
  static LintReport fromJson(const util::JsonValue& doc);

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace ahfic::lint
