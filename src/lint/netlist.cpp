#include "lint/netlist.h"

#include <map>
#include <vector>

#include "lint/modelcard.h"
#include "obs/metrics.h"
#include "spice/analysis.h"
#include "spice/bjt.h"
#include "spice/diode.h"
#include "spice/mosfet.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/error.h"

namespace ahfic::lint {

namespace {

/// Union-find over node ids with path halving.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    for (int k = 0; k < n; ++k) parent_[static_cast<size_t>(k)] = k;
  }
  int find(int a) {
    while (parent_[static_cast<size_t>(a)] != a) {
      parent_[static_cast<size_t>(a)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(a)])];
      a = parent_[static_cast<size_t>(a)];
    }
    return a;
  }
  /// Merges the sets of a and b; returns false when they were already in
  /// the same set (i.e. the edge closes a cycle).
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[static_cast<size_t>(a)] = b;
    return true;
  }

 private:
  std::vector<int> parent_;
};

/// Engine-synthesised internal nodes ("q1#b") are wired inside their
/// device and never user-visible; node-level checks skip them.
bool isInternalNode(const std::string& name) {
  return name.find('#') != std::string::npos;
}

/// SourceLoc for a device: deck line when the parser recorded one.
SourceLoc deviceLoc(const spice::Circuit& ckt, const spice::Device& dev) {
  SourceLoc loc = SourceLoc::forObject(dev.name());
  loc.line = ckt.deviceLine(dev.name());
  return loc;
}

}  // namespace

LintReport lintCircuit(const spice::Circuit& ckt) {
  static const obs::Counter cRuns = obs::counter("lint.netlist_runs");
  static const obs::Counter cDiags = obs::counter("lint.diagnostics");
  cRuns.add();

  LintReport report;
  const int n = ckt.nodeCount();
  const size_t nn = static_cast<size_t>(n);

  // One device walk classifies every terminal.
  std::vector<int> attachments(nn, 0);       // device terminals per node
  std::vector<int> nonCurrentTerms(nn, 0);   // terminals that are not
                                             // current-source injections
  std::vector<int> firstDevice(nn, -1);      // device index per node (loc)
  UnionFind structural(n);  // every device ties all its nodes together
  UnionFind dcPath(n);      // only DC-conductive edges
  UnionFind vBranches(n);   // only voltage-defining branches

  const auto& devices = ckt.devices();
  for (size_t di = 0; di < devices.size(); ++di) {
    const spice::Device* dev = devices[di].get();
    const auto& nodes = dev->nodes();
    for (int nd : nodes) {
      if (nd <= 0 || nd >= n) continue;
      ++attachments[static_cast<size_t>(nd)];
      if (firstDevice[static_cast<size_t>(nd)] < 0)
        firstDevice[static_cast<size_t>(nd)] = static_cast<int>(di);
    }
    for (size_t k = 1; k < nodes.size(); ++k)
      structural.unite(nodes[0], nodes[k]);

    // Current-source injections: the first two terminals of I/VCCS/CCCS.
    const bool isCurrentSource = dynamic_cast<const spice::ISource*>(dev) ||
                                 dynamic_cast<const spice::Vccs*>(dev) ||
                                 dynamic_cast<const spice::Cccs*>(dev);
    for (size_t k = 0; k < nodes.size(); ++k) {
      const int nd = nodes[k];
      if (nd <= 0 || nd >= n) continue;
      if (!(isCurrentSource && k < 2))
        ++nonCurrentTerms[static_cast<size_t>(nd)];
    }

    // DC-conductive edges (capacitors open, current sources unconstrained,
    // MOS gate insulated).
    if (dynamic_cast<const spice::Resistor*>(dev) ||
        dynamic_cast<const spice::Inductor*>(dev) ||
        dynamic_cast<const spice::VSource*>(dev) ||
        dynamic_cast<const spice::Vcvs*>(dev) ||
        dynamic_cast<const spice::Ccvs*>(dev) ||
        dynamic_cast<const spice::Diode*>(dev)) {
      dcPath.unite(nodes[0], nodes[1]);
    } else if (dynamic_cast<const spice::Bjt*>(dev)) {
      // c-b-e conduct through the junctions; the substrate junction at
      // least sees the gmin shunt, so tie it in too (false positives on
      // substrate nets would be worse than a missed corner case).
      for (size_t k = 1; k < nodes.size(); ++k)
        dcPath.unite(nodes[0], nodes[k]);
    } else if (dynamic_cast<const spice::Mosfet*>(dev)) {
      // d(0), s(2), b(3) conduct; the gate (1) is insulated.
      dcPath.unite(nodes[0], nodes[2]);
      dcPath.unite(nodes[0], nodes[3]);
    }

    // Voltage-defining branches: cycles here mean a singular MNA matrix.
    const bool definesVoltage = dynamic_cast<const spice::VSource*>(dev) ||
                                dynamic_cast<const spice::Vcvs*>(dev) ||
                                dynamic_cast<const spice::Ccvs*>(dev);
    const bool isInductor = dynamic_cast<const spice::Inductor*>(dev);
    if (definesVoltage || isInductor) {
      const int ra = vBranches.find(nodes[0]);
      const int rb = vBranches.find(nodes[1]);
      const bool closes = (ra == rb);
      if (!closes) vBranches.unite(nodes[0], nodes[1]);
      if (closes || nodes[0] == nodes[1]) {
        // Walk earlier devices in this component to classify the loop.
        bool loopHasSource = definesVoltage;
        if (!loopHasSource) {
          for (size_t dj = 0; dj < di; ++dj) {
            const spice::Device* other = devices[dj].get();
            if (!(dynamic_cast<const spice::VSource*>(other) ||
                  dynamic_cast<const spice::Vcvs*>(other) ||
                  dynamic_cast<const spice::Ccvs*>(other)))
              continue;
            if (vBranches.find(other->nodes()[0]) == ra) {
              loopHasSource = true;
              break;
            }
          }
        }
        if (loopHasSource) {
          report.error(
              "NET_VSRC_LOOP",
              "'" + dev->name() + "' closes a loop of voltage sources" +
                  (isInductor ? "/inductors" : "") +
                  " between nodes '" + ckt.nodeName(nodes[0]) + "' and '" +
                  ckt.nodeName(nodes[1]) +
                  "': the MNA matrix is singular (KVL overdetermined)",
              deviceLoc(ckt, *dev));
        } else {
          report.error(
              "NET_IND_LOOP",
              "'" + dev->name() + "' closes a loop of inductors between "
                  "nodes '" + ckt.nodeName(nodes[0]) + "' and '" +
                  ckt.nodeName(nodes[1]) +
                  "': inductors are DC shorts, the operating point is "
                  "singular",
              deviceLoc(ckt, *dev));
        }
      }
    }

    // Value sanity on constructed passives.
    if (const auto* cap = dynamic_cast<const spice::Capacitor*>(dev)) {
      if (cap->capacitance() == 0.0)
        report.warning("NET_ZERO_CAP",
                       "capacitor '" + dev->name() +
                           "' has zero capacitance and never conducts",
                       deviceLoc(ckt, *dev));
    }
  }

  auto nodeLoc = [&](int nd) {
    SourceLoc loc = SourceLoc::forObject("node " + ckt.nodeName(nd));
    const int di = firstDevice[static_cast<size_t>(nd)];
    if (di >= 0) loc.line = ckt.deviceLine(devices[static_cast<size_t>(di)]->name());
    return loc;
  };

  // Per-node verdicts. Ordered so each node gets its most specific
  // diagnosis only: cutset > disconnected > floating > dangling.
  const int groundStructural = structural.find(0);
  const int groundDc = dcPath.find(0);
  std::map<int, std::vector<std::string>> islands;  // root -> node names
  for (int nd = 1; nd < n; ++nd) {
    const size_t ni = static_cast<size_t>(nd);
    if (isInternalNode(ckt.nodeName(nd))) continue;
    if (attachments[ni] == 0) continue;  // named but unused: harmless

    if (nonCurrentTerms[ni] == 0) {
      report.error(
          "NET_ISRC_CUTSET",
          "node '" + ckt.nodeName(nd) +
              "' is fed exclusively by current sources: KCL there is "
              "overdetermined and the node voltage is unconstrained",
          nodeLoc(nd));
      continue;
    }
    if (structural.find(nd) != groundStructural) {
      islands[structural.find(nd)].push_back(ckt.nodeName(nd));
      continue;
    }
    if (dcPath.find(nd) != groundDc) {
      report.error(
          "NET_FLOATING_NODE",
          "node '" + ckt.nodeName(nd) +
              "' has no DC path to ground (capacitors are open, current "
              "sources and MOS gates do not constrain the voltage): the "
              "operating-point matrix is singular",
          nodeLoc(nd));
      continue;
    }
    if (attachments[ni] == 1)
      report.warning("NET_DANGLING_NODE",
                     "node '" + ckt.nodeName(nd) +
                         "' is attached to a single device terminal",
                     nodeLoc(nd));
  }
  for (const auto& [root, names] : islands) {
    std::string list;
    for (size_t k = 0; k < names.size() && k < 4; ++k) {
      if (k) list += ", ";
      list += names[k];
    }
    if (names.size() > 4) list += ", ...";
    report.error("NET_DISCONNECTED",
                 "component island {" + list + "} (" +
                     std::to_string(names.size()) +
                     " node(s)) is unreachable from ground",
                 SourceLoc::forObject(names.front()));
  }

  // Model cards registered on the circuit.
  for (const auto& [name, model] : ckt.bjtModels())
    lintBjtModel(model, name, report);
  for (const auto& [name, model] : ckt.diodeModels())
    lintDiodeModel(model, name, report);

  cDiags.add(static_cast<long long>(report.diagnostics().size()));
  return report;
}

LintReport lintDeck(const spice::Deck& deck) {
  LintReport report = lintCircuit(deck.circuit);

  bool hasAc = false, hasTran = false;
  for (const auto& req : deck.analyses) {
    if (std::holds_alternative<spice::AcRequest>(req) ||
        std::holds_alternative<spice::NoiseRequest>(req))
      hasAc = true;
    if (std::holds_alternative<spice::TranRequest>(req)) hasTran = true;
  }

  bool anyAcSource = false;
  for (const auto& dev : deck.circuit.devices()) {
    double acMag = 0.0;
    const spice::Waveform* wave = nullptr;
    if (const auto* v = dynamic_cast<const spice::VSource*>(dev.get())) {
      acMag = v->acMagnitude();
      wave = &v->waveform();
    } else if (const auto* i =
                   dynamic_cast<const spice::ISource*>(dev.get())) {
      acMag = i->acMagnitude();
      wave = &i->waveform();
    } else {
      continue;
    }
    if (acMag != 0.0) anyAcSource = true;
    if (acMag != 0.0 && !hasAc)
      report.warning("NET_UNUSED_AC",
                     "source '" + dev->name() +
                         "' carries an AC specification but the deck "
                         "requests no .AC or .NOISE analysis",
                     deviceLoc(deck.circuit, *dev));
    if (wave->isTimeVarying() && !hasTran)
      report.warning("NET_UNUSED_TRAN",
                     "source '" + dev->name() +
                         "' carries a time-varying waveform but the deck "
                         "requests no .TRAN analysis",
                     deviceLoc(deck.circuit, *dev));
  }
  if (hasAc && !anyAcSource)
    report.warning("NET_NO_AC_SOURCE",
                   "an .AC/.NOISE analysis is requested but no source has "
                   "a nonzero AC magnitude: the response will be zero");
  if (deck.analyses.empty())
    report.info("NET_NO_ANALYSIS",
                "the deck requests no analysis (.OP/.DC/.AC/.TRAN/.NOISE)");

  // Backend-choice heads-up: past the dense threshold the auto heuristic
  // silently switches to the sparse backend. That is almost always right,
  // but an explicit `.OPTIONS SOLVER=...` makes benchmark decks and
  // regression baselines self-documenting.
  if (deck.solverOption.empty()) {
    long unknowns = deck.circuit.nodeCount() - 1;
    for (const auto& dev : deck.circuit.devices())
      unknowns += dev->branchCount();
    if (unknowns > spice::kDenseBackendMaxUnknowns)
      report.info(
          "NET_SOLVER_CHOICE",
          "the deck has " + std::to_string(unknowns) +
              " MNA unknowns (dense-backend threshold is " +
              std::to_string(spice::kDenseBackendMaxUnknowns) +
              ") and no explicit .OPTIONS SOLVER= choice; the auto "
              "heuristic will pick the sparse backend");
  }
  return report;
}

LintReport lintDeckText(const std::string& text) {
  spice::Deck deck;
  try {
    deck = spice::parseDeck(text);
  } catch (const ParseError& e) {
    LintReport report;
    report.error("PARSE", e.what(), SourceLoc::forLine(e.line()));
    return report;
  } catch (const Error& e) {
    // Construction-time rejection (zero-valued R/L, duplicate device
    // names, unknown models referenced by position...).
    LintReport report;
    report.error("PARSE", e.what());
    return report;
  }
  return lintDeck(deck);
}

}  // namespace ahfic::lint
