#include "lint/ahdl.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "obs/metrics.h"
#include "util/error.h"

namespace ahfic::lint {

namespace {

// ---------------------------------------------------------------------------
// Expression dimension lattice.

/// Physical dimension of a subexpression. kUnknown is absorbing: a
/// parameter can carry any unit, so everything it touches stays
/// unconstrained and only *definite* conflicts are reported.
enum class Dim { kUnknown, kNone, kVoltage, kTime };

const char* dimName(Dim d) {
  switch (d) {
    case Dim::kNone: return "dimensionless";
    case Dim::kVoltage: return "voltage";
    case Dim::kTime: return "time";
    default: return "unknown";
  }
}

/// Short source-like rendering of a subtree for diagnostics.
std::string render(const ahdl::ExprNode& e, int depth = 0) {
  using Kind = ahdl::ExprNode::Kind;
  if (depth > 3) return "...";
  switch (e.kind) {
    case Kind::kNumber: {
      std::string s = std::to_string(e.number);
      // Trim trailing zeros of the default %f rendering.
      while (s.size() > 1 && s.back() == '0') s.pop_back();
      if (!s.empty() && s.back() == '.') s.pop_back();
      return s;
    }
    case Kind::kVar:
      return e.name;
    case Kind::kSignal:
      return "V(" + e.name + ")";
    case Kind::kUnary:
      return std::string(1, e.op) + render(*e.args[0], depth + 1);
    case Kind::kBinary:
      return render(*e.args[0], depth + 1) + " " + e.op + " " +
             render(*e.args[1], depth + 1);
    case Kind::kCall: {
      std::string s = e.name + "(";
      for (size_t k = 0; k < e.args.size(); ++k) {
        if (k) s += ", ";
        s += render(*e.args[k], depth + 1);
      }
      return s + ")";
    }
  }
  return "?";
}

/// Infers the dimension of `e`, reporting definite '+'/'-' conflicts.
Dim inferDim(const ahdl::ExprNode& e, const std::string& context,
             LintReport& report) {
  using Kind = ahdl::ExprNode::Kind;
  switch (e.kind) {
    case Kind::kNumber:
      return Dim::kNone;
    case Kind::kVar:
      if (e.name == "t") return Dim::kTime;
      if (e.name == "pi") return Dim::kNone;
      return Dim::kUnknown;  // parameters are polymorphic
    case Kind::kSignal:
      return Dim::kVoltage;
    case Kind::kUnary:
      return inferDim(*e.args[0], context, report);
    case Kind::kBinary: {
      const Dim a = inferDim(*e.args[0], context, report);
      const Dim b = inferDim(*e.args[1], context, report);
      if (e.op == '+' || e.op == '-') {
        if (a != Dim::kUnknown && b != Dim::kUnknown && a != b) {
          report.error(
              "AHDL_DIM_MISMATCH",
              "'" + context + "': '" + render(e) + "' " + e.op +
                  "-combines a " + dimName(a) + " quantity with a " +
                  dimName(b) + " quantity",
              SourceLoc::forObject(context));
          return Dim::kUnknown;
        }
        return a == Dim::kUnknown ? b : a;
      }
      if (e.op == '*') {
        if (a == Dim::kNone) return b;
        if (b == Dim::kNone) return a;
        return Dim::kUnknown;  // compound units are not tracked
      }
      if (e.op == '/') {
        if (b == Dim::kNone) return a;
        if (a != Dim::kUnknown && a == b) return Dim::kNone;  // V/V, t/t
        return Dim::kUnknown;
      }
      // '^': dimensionless base and exponent stay dimensionless.
      if (a == Dim::kNone && b == Dim::kNone) return Dim::kNone;
      return Dim::kUnknown;
    }
    case Kind::kCall: {
      // min/max behave like '+': operands must be commensurable.
      if (e.name == "min" || e.name == "max") {
        Dim d = Dim::kUnknown;
        for (const auto& arg : e.args) {
          const Dim ad = inferDim(*arg, context, report);
          if (ad == Dim::kUnknown) continue;
          if (d != Dim::kUnknown && d != ad) {
            report.error("AHDL_DIM_MISMATCH",
                         "'" + context + "': '" + render(e) +
                             "' compares a " + dimName(d) +
                             " quantity with a " + dimName(ad) + " quantity",
                         SourceLoc::forObject(context));
            return Dim::kUnknown;
          }
          d = ad;
        }
        return d;
      }
      if (e.name == "abs") return inferDim(*e.args[0], context, report);
      // Transcendentals (sin, exp, tanh, pow, atan2, ...) return plain
      // numbers; their argument dimensions are not policed because the
      // idiomatic sin(2*pi*f*t) only cancels through parameters.
      for (const auto& arg : e.args) inferDim(*arg, context, report);
      return Dim::kNone;
    }
  }
  return Dim::kUnknown;
}

/// Joins up to four names as "'a', 'b', ...".
std::string nameList(const std::vector<std::string>& names) {
  std::string list;
  for (size_t k = 0; k < names.size() && k < 4; ++k) {
    if (k) list += ", ";
    list += "'" + names[k] + "'";
  }
  if (names.size() > 4) list += ", ...";
  return list;
}

}  // namespace

void lintExpr(const ahdl::ExprNode& expr, const std::string& context,
              LintReport& report) {
  inferDim(expr, context, report);
}

LintReport lintSystem(const ahdl::System& system) {
  static const obs::Counter cRuns = obs::counter("lint.ahdl_runs");
  static const obs::Counter cDiags = obs::counter("lint.diagnostics");
  cRuns.add();

  LintReport report;
  const auto views = system.blockViews();
  const int nSignals = system.signalCount();
  const size_t ns = static_cast<size_t>(nSignals);

  std::vector<std::vector<int>> writers(ns), readers(ns);
  for (size_t bi = 0; bi < views.size(); ++bi) {
    for (int s : *views[bi].outputs)
      writers[static_cast<size_t>(s)].push_back(static_cast<int>(bi));
    for (int s : *views[bi].inputs)
      readers[static_cast<size_t>(s)].push_back(static_cast<int>(bi));
  }

  std::set<int> probed;
  for (const auto& p : system.probes()) {
    const int id = system.findSignal(p);
    if (id < 0) {
      report.warning("AHDL_PROBE_UNDRIVEN",
                     "probed signal '" + p +
                         "' is not connected to any block and will fail "
                         "at run time",
                     SourceLoc::forObject(p));
      continue;
    }
    probed.insert(id);
    if (writers[static_cast<size_t>(id)].empty())
      report.warning("AHDL_PROBE_UNDRIVEN",
                     "probed signal '" + p +
                         "' has no driver: its trace will be all zeros",
                     SourceLoc::forObject(p));
  }

  // Signal-level verdicts.
  for (int s = 0; s < nSignals; ++s) {
    const size_t si = static_cast<size_t>(s);
    const std::string& name = system.signalName(s);
    if (writers[si].empty() && !readers[si].empty()) {
      std::vector<std::string> consumers;
      for (int bi : readers[si])
        consumers.push_back(views[static_cast<size_t>(bi)].block->name());
      report.error("AHDL_UNDRIVEN",
                   "signal '" + name + "' is read by " +
                       nameList(consumers) +
                       " but no block drives it: it stays 0.0 for the "
                       "whole run",
                   SourceLoc::forObject(name));
    }
    if (writers[si].size() >= 2) {
      std::vector<std::string> producers;
      for (int bi : writers[si])
        producers.push_back(views[static_cast<size_t>(bi)].block->name());
      report.error("AHDL_MULTI_DRIVEN",
                   "signal '" + name + "' is driven by " +
                       std::to_string(writers[si].size()) + " blocks (" +
                       nameList(producers) +
                       "): the last writer per step silently wins",
                   SourceLoc::forObject(name));
    }
  }

  // Dead blocks: every output unread and unprobed. Sinks (no outputs)
  // are exempt — their side effect is the point.
  for (const auto& view : views) {
    if (view.outputs->empty()) continue;
    bool used = false;
    for (int s : *view.outputs) {
      if (!readers[static_cast<size_t>(s)].empty() || probed.count(s)) {
        used = true;
        break;
      }
    }
    if (!used)
      report.warning("AHDL_UNUSED_BLOCK",
                     "block '" + view.block->name() +
                         "' drives only signals that nothing reads or "
                         "probes: dead computation",
                     SourceLoc::forObject(view.block->name()));
  }

  // Feedback cycles. Edges run producer -> consumer; an SCC (or a
  // self-loop) whose blocks are all memoryless closes only through the
  // engine's implicit one-sample declaration-order delay, so its
  // behaviour is an artefact of the sample rate.
  const int nb = static_cast<int>(views.size());
  std::vector<std::vector<int>> adj(static_cast<size_t>(nb));
  std::vector<char> selfLoop(static_cast<size_t>(nb), 0);
  for (size_t si = 0; si < ns; ++si) {
    for (int w : writers[si]) {
      for (int r : readers[si]) {
        if (w == r)
          selfLoop[static_cast<size_t>(w)] = 1;
        else
          adj[static_cast<size_t>(w)].push_back(r);
      }
    }
  }

  // Tarjan SCC, iterative to keep deep chains off the call stack.
  std::vector<int> index(static_cast<size_t>(nb), -1);
  std::vector<int> low(static_cast<size_t>(nb), 0);
  std::vector<char> onStack(static_cast<size_t>(nb), 0);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int nextIndex = 0;
  struct Frame {
    int v;
    size_t edge;
  };
  for (int root = 0; root < nb; ++root) {
    if (index[static_cast<size_t>(root)] >= 0) continue;
    std::vector<Frame> frames{{root, 0}};
    index[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] =
        nextIndex++;
    stack.push_back(root);
    onStack[static_cast<size_t>(root)] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const size_t v = static_cast<size_t>(f.v);
      if (f.edge < adj[v].size()) {
        const int w = adj[v][f.edge++];
        const size_t wi = static_cast<size_t>(w);
        if (index[wi] < 0) {
          index[wi] = low[wi] = nextIndex++;
          stack.push_back(w);
          onStack[wi] = 1;
          frames.push_back({w, 0});
        } else if (onStack[wi]) {
          low[v] = std::min(low[v], index[wi]);
        }
      } else {
        if (low[v] == index[v]) {
          std::vector<int> scc;
          int w;
          do {
            w = stack.back();
            stack.pop_back();
            onStack[static_cast<size_t>(w)] = 0;
            scc.push_back(w);
          } while (w != f.v);
          sccs.push_back(std::move(scc));
        }
        const int parentLow = low[v];
        frames.pop_back();
        if (!frames.empty()) {
          const size_t p = static_cast<size_t>(frames.back().v);
          low[p] = std::min(low[p], parentLow);
        }
      }
    }
  }

  for (const auto& scc : sccs) {
    const bool isCycle =
        scc.size() > 1 || selfLoop[static_cast<size_t>(scc.front())];
    if (!isCycle) continue;
    bool hasMemory = false;
    std::vector<std::string> members;
    for (int bi : scc) {
      const ahdl::Block* blk = views[static_cast<size_t>(bi)].block;
      members.push_back(blk->name());
      if (blk->hasMemory()) hasMemory = true;
    }
    if (!hasMemory) {
      std::sort(members.begin(), members.end());
      report.warning(
          "AHDL_COMB_CYCLE",
          "feedback loop through " + nameList(members) +
              " contains no block with memory: the loop closes only "
              "through the implicit one-sample delay, so its behaviour "
              "depends on the sample rate and declaration order",
          SourceLoc::forObject(members.front()));
    }
  }

  // Expression blocks: dimension checks on their right-hand sides.
  for (const auto& view : views) {
    if (const auto* eb = dynamic_cast<const ahdl::ExprBlock*>(view.block))
      lintExpr(eb->expr(), eb->name(), report);
  }

  cDiags.add(static_cast<long long>(report.diagnostics().size()));
  return report;
}

LintReport lintAhdlText(const std::string& text) {
  ahdl::AhdlNetlist netlist;
  try {
    netlist = ahdl::parseAhdl(text);
  } catch (const ParseError& e) {
    LintReport report;
    report.error("PARSE", e.what(), SourceLoc::forLine(e.line()));
    return report;
  } catch (const Error& e) {
    LintReport report;
    report.error("PARSE", e.what());
    return report;
  }
  LintReport report = lintSystem(netlist.system);
  if (!netlist.runSpec)
    report.info("AHDL_NO_RUN",
                "the netlist declares no `run` statement; nothing will be "
                "simulated");
  return report;
}

}  // namespace ahfic::lint
