#pragma once
// Static checks on ahdl::System dataflow graphs and AHDL expressions —
// the "verify structure before simulating" gate of the paper's Sec. 2
// behavioural methodology.
//
// Codes:
//   AHDL_UNDRIVEN      a signal is read by a block but no block drives it
//                      (it stays 0.0 forever) — error
//   AHDL_MULTI_DRIVEN  two or more blocks write the same signal; the last
//                      writer per step silently wins — error
//   AHDL_UNUSED_BLOCK  a block's outputs are neither read nor probed —
//                      warning (dead computation)
//   AHDL_PROBE_UNDRIVEN  a probed signal has no driver — warning
//   AHDL_COMB_CYCLE    a feedback cycle contains no block with memory:
//                      the loop closes only through the engine's implicit
//                      one-sample delay, so its behaviour depends on the
//                      sample rate and declaration order — warning
//   AHDL_DIM_MISMATCH  an expression adds/subtracts operands of
//                      incompatible physical dimension (e.g. V(x) + t) —
//                      error
//
// Expression dimension rules: numbers are dimensionless, `t` carries
// time, V(name) carries voltage, parameters are polymorphic (unknown).
// '+'/'-' require both sides compatible; '*'/'/' combine exponents;
// transcendental functions return dimensionless. Unknown absorbs
// everything, so only definite conflicts are reported.

#include <string>

#include "ahdl/expr.h"
#include "ahdl/lang.h"
#include "ahdl/system.h"
#include "lint/diagnostics.h"

namespace ahfic::lint {

/// Dataflow checks on a built system (plus expression checks on every
/// ExprBlock it contains).
LintReport lintSystem(const ahdl::System& system);

/// Expression dimension check; `context` names the enclosing block or
/// assignment in diagnostics.
void lintExpr(const ahdl::ExprNode& expr, const std::string& context,
              LintReport& report);

/// Parses `text` as an AHDL netlist and lints the elaborated system;
/// parse failures become PARSE diagnostics instead of exceptions.
LintReport lintAhdlText(const std::string& text);

}  // namespace ahfic::lint
