// Supplementary study for the paper's Sec. 2 remark that designers "have
// to examine the performance of this system taking IC process variations
// into account":
//
//   Part 1 — die-to-die spread of the Table 1 ring oscillator frequency
//            under the synthetic process's variation model.
//   Part 2 — image-rejection yield against the 30 dB system requirement
//            for several (phase, gain) mismatch qualities — the Fig. 5
//            curves turned into a manufacturing decision.
//
// Both parts fan out through the batch runner: each die and each yield
// chunk is an independently-seeded job, so results are identical for any
// worker count.
// Usage: bench_process_variation [--jobs N] [--dies N]
//                                [--trace FILE] [--metrics FILE]

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "bjtgen/generator.h"
#include "bjtgen/montecarlo.h"
#include "bjtgen/ringosc.h"
#include "obs/cli.h"
#include "runner/engine.h"
#include "runner/workloads.h"
#include "tuner/irr.h"
#include "util/table.h"
#include "util/units.h"

namespace bg = ahfic::bjtgen;
namespace rn = ahfic::runner;
namespace tn = ahfic::tuner;
namespace u = ahfic::util;

int main(int argc, char** argv) {
  int jobs = 0;
  int dies = 9;
  ahfic::obs::CliOptions obsOpts;
  for (int k = 1; k < argc; ++k) {
    if (obsOpts.consume(argc, argv, k)) continue;
    if (std::strcmp(argv[k], "--jobs") == 0 && k + 1 < argc)
      jobs = std::atoi(argv[++k]);
    else if (std::strcmp(argv[k], "--dies") == 0 && k + 1 < argc)
      dies = std::atoi(argv[++k]);
  }
  obsOpts.begin();

  std::cout << "== Part 1: ring-oscillator frequency across dies ==\n"
            << "(N1.2-12D differential pairs, nominal process +/- die "
               "variation)\n\n";

  bg::RingOscillatorSpec nominalSpec;
  {
    const auto nominalGen = bg::ModelGenerator::withDefaultTechnology();
    nominalSpec.diffPairModel = nominalGen.generate("N1.2-12D");
    nominalSpec.followerModel = nominalGen.generate("N1.2-6D");
  }
  const auto nominal = bg::measureRingFrequency(nominalSpec, 10.0, 3.0);

  rn::RunnerOptions ropts;
  ropts.threads = jobs;
  ropts.baseSeed = 20250706;
  ropts.useCache = false;
  rn::BatchRunner runner(ropts);

  const auto dieBatch = runner.run(rn::monteCarloRingJobs(
      bg::defaultTechnology(), bg::ProcessVariation{}, dies, nominalSpec,
      "N1.2-12D", "N1.2-6D", 10.0, 3.0));

  std::vector<double> freqs;
  u::Table dieTable({"die", "free-running frequency", "vs nominal"});
  for (int d = 0; d < dies; ++d) {
    const auto& out = dieBatch.outcomes[static_cast<size_t>(d)];
    const bool osc = out.ok() && out.result.get("oscillating") > 0.5;
    const double f = out.result.get("frequency");
    if (osc) freqs.push_back(f);
    dieTable.addRow(
        {std::to_string(d + 1), osc ? u::formatFrequency(f) : "no osc.",
         osc ? u::fixed((f / nominal.frequency - 1.0) * 100.0, 1) + "%"
             : "-"});
  }
  dieTable.print(std::cout);

  if (!freqs.empty()) {
    double mean = 0.0;
    for (double f : freqs) mean += f;
    mean /= static_cast<double>(freqs.size());
    double var = 0.0;
    for (double f : freqs) var += (f - mean) * (f - mean);
    var /= static_cast<double>(freqs.size());
    std::cout << "\nNominal: " << u::formatFrequency(nominal.frequency)
              << ",  die mean: " << u::formatFrequency(mean)
              << ",  sigma: " << u::fixed(std::sqrt(var) / mean * 100.0, 1)
              << "%\n";
  }

  std::cout << "\n== Part 2: image-rejection yield vs mismatch quality ==\n"
            << "(Monte-Carlo over quadrature phase / gain mismatch; "
               "requirement: IRR >= 30 dB)\n\n";
  const std::vector<rn::IrrYieldCorner> corners = {
      {0.5, 0.005}, {1.0, 0.01}, {2.0, 0.02}, {4.0, 0.04}, {6.0, 0.08}};
  const int samplesPerCorner = 20000;
  const int chunks = 4;
  const auto yieldBatch = runner.run(
      rn::irrYieldJobs(corners, 30.0, samplesPerCorner, chunks));
  const auto yields = rn::reduceIrrYield(
      yieldBatch.outcomes, static_cast<int>(corners.size()), chunks);

  u::Table yieldTable({"sigma phase [deg]", "sigma gain [%]", "mean IRR",
                       "worst IRR", "yield"});
  for (size_t c = 0; c < corners.size(); ++c) {
    const auto& r = yields[c];
    yieldTable.addRow({u::fixed(corners[c].sigmaPhaseDeg, 1),
                       u::fixed(corners[c].sigmaGain * 100.0, 1),
                       u::fixed(r.meanIrrDb, 1) + " dB",
                       u::fixed(r.worstIrrDb, 1) + " dB",
                       u::fixed(r.yield() * 100.0, 1) + "%"});
  }
  yieldTable.print(std::cout);
  std::cout << "\nReading: to ship a 30 dB tuner the 90-degree shifters "
               "must hold sigma_phase\n<= ~1 deg at ~1% gain matching — "
               "exactly the specification the Fig. 5 sweep\nhands the "
               "block designers.\n";

  std::cout << "\n[runner] dies: " << dieBatch.manifest.jobs.size()
            << " jobs ("
            << dieBatch.manifest.countWithStatus(rn::JobStatus::kRecovered)
            << " recovered, "
            << dieBatch.manifest.countWithStatus(rn::JobStatus::kFailed)
            << " failed), yield: " << yieldBatch.manifest.jobs.size()
            << " jobs, " << dieBatch.manifest.threads << " thread(s)\n";
  obsOpts.finish(std::cout);
  return 0;
}
