// Supplementary study for the paper's Sec. 2 remark that designers "have
// to examine the performance of this system taking IC process variations
// into account":
//
//   Part 1 — die-to-die spread of the Table 1 ring oscillator frequency
//            under the synthetic process's variation model.
//   Part 2 — image-rejection yield against the 30 dB system requirement
//            for several (phase, gain) mismatch qualities — the Fig. 5
//            curves turned into a manufacturing decision.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bjtgen/montecarlo.h"
#include "bjtgen/ringosc.h"
#include "tuner/irr.h"
#include "util/table.h"
#include "util/units.h"

namespace bg = ahfic::bjtgen;
namespace tn = ahfic::tuner;
namespace u = ahfic::util;

int main() {
  std::cout << "== Part 1: ring-oscillator frequency across dies ==\n"
            << "(N1.2-12D differential pairs, nominal process +/- die "
               "variation)\n\n";

  bg::MonteCarloGenerator mc(bg::defaultTechnology(),
                             bg::ProcessVariation{}, 20250706);
  const int dies = 9;
  std::vector<double> freqs;
  u::Table dieTable({"die", "free-running frequency", "vs nominal"});

  bg::RingOscillatorSpec nominalSpec;
  {
    const auto nominalGen = bg::ModelGenerator::withDefaultTechnology();
    nominalSpec.diffPairModel = nominalGen.generate("N1.2-12D");
    nominalSpec.followerModel = nominalGen.generate("N1.2-6D");
  }
  const auto nominal = bg::measureRingFrequency(nominalSpec, 10.0, 3.0);

  for (int d = 0; d < dies; ++d) {
    const auto gen = mc.sampleDie();
    bg::RingOscillatorSpec spec;
    spec.diffPairModel = mc.withLocalMismatch(gen.generate("N1.2-12D"));
    spec.followerModel = gen.generate("N1.2-6D");
    const auto m = bg::measureRingFrequency(spec, 10.0, 3.0);
    if (m.oscillating) freqs.push_back(m.frequency);
    dieTable.addRow(
        {std::to_string(d + 1),
         m.oscillating ? u::formatFrequency(m.frequency) : "no osc.",
         m.oscillating
             ? u::fixed((m.frequency / nominal.frequency - 1.0) * 100.0,
                        1) +
                   "%"
             : "-"});
  }
  dieTable.print(std::cout);

  if (!freqs.empty()) {
    double mean = 0.0;
    for (double f : freqs) mean += f;
    mean /= static_cast<double>(freqs.size());
    double var = 0.0;
    for (double f : freqs) var += (f - mean) * (f - mean);
    var /= static_cast<double>(freqs.size());
    std::cout << "\nNominal: " << u::formatFrequency(nominal.frequency)
              << ",  die mean: " << u::formatFrequency(mean)
              << ",  sigma: " << u::fixed(std::sqrt(var) / mean * 100.0, 1)
              << "%\n";
  }

  std::cout << "\n== Part 2: image-rejection yield vs mismatch quality ==\n"
            << "(Monte-Carlo over quadrature phase / gain mismatch; "
               "requirement: IRR >= 30 dB)\n\n";
  u::Table yieldTable({"sigma phase [deg]", "sigma gain [%]", "mean IRR",
                       "worst IRR", "yield"});
  struct Corner {
    double sp, sg;
  };
  for (const Corner c : {Corner{0.5, 0.005}, Corner{1.0, 0.01},
                         Corner{2.0, 0.02}, Corner{4.0, 0.04},
                         Corner{6.0, 0.08}}) {
    const auto r = tn::irrYield(c.sp, c.sg, 30.0, 20000, 7);
    yieldTable.addRow({u::fixed(c.sp, 1), u::fixed(c.sg * 100.0, 1),
                       u::fixed(r.meanIrrDb, 1) + " dB",
                       u::fixed(r.worstIrrDb, 1) + " dB",
                       u::fixed(r.yield() * 100.0, 1) + "%"});
  }
  yieldTable.print(std::cout);
  std::cout << "\nReading: to ship a 30 dB tuner the 90-degree shifters "
               "must hold sigma_phase\n<= ~1 deg at ~1% gain matching — "
               "exactly the specification the Fig. 5 sweep\nhands the "
               "block designers.\n";
  return 0;
}
