// Reproduces Table 1: "Free-running frequency of ring oscillator in which
// transistor shapes of Q1, Q2, Q5, Q6, ... are changed uniformly".
//
// The Fig. 11 five-stage ECL ring oscillator is built with each of the
// six Fig. 8 shapes in the differential pairs (followers fixed), and the
// free-running frequency is measured from the transient waveform. The
// paper's conclusion to reproduce: "the best shape for the transistors
// was N1.2-12D".
//
// One transient job per candidate shape, executed by the batch runner.
// Usage: bench_table1_ring_osc [--jobs N] [--json FILE]
//                              [--trace FILE] [--metrics FILE]

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bjtgen/generator.h"
#include "bjtgen/ringosc.h"
#include "obs/bench.h"
#include "obs/cli.h"
#include "runner/engine.h"
#include "runner/workloads.h"
#include "util/json.h"
#include "util/table.h"
#include "util/units.h"

namespace bg = ahfic::bjtgen;
namespace rn = ahfic::runner;
namespace u = ahfic::util;

int main(int argc, char** argv) {
  int jobs = 0;
  std::string jsonPath;
  ahfic::obs::CliOptions obsOpts;
  for (int k = 1; k < argc; ++k) {
    if (obsOpts.consume(argc, argv, k)) continue;
    if (std::strcmp(argv[k], "--jobs") == 0 && k + 1 < argc)
      jobs = std::atoi(argv[++k]);
    else if (std::strcmp(argv[k], "--json") == 0 && k + 1 < argc)
      jsonPath = argv[++k];
  }
  obsOpts.begin();

  const auto gen = bg::ModelGenerator::withDefaultTechnology();

  bg::RingOscillatorSpec spec;
  spec.followerModel = gen.generate("N1.2-6D");

  std::cout << "== Table 1: ring-oscillator free-running frequency vs "
               "differential-pair shape ==\n"
            << "(5-stage ECL ring, tail current "
            << u::fixed(spec.tailCurrent * 1e3, 1)
            << " mA per stage, followers fixed at N1.2-6D)\n\n";

  const auto shapes = bg::fig8Shapes();
  rn::RunnerOptions ropts;
  ropts.threads = jobs;
  ropts.useCache = false;
  rn::BatchRunner runner(ropts);
  const auto batch =
      runner.run(rn::ringShapeJobs(gen, shapes, spec, 10.0, 3.0));

  struct Row {
    std::string shape;
    double freq;
    double swing;
    double emitterSizeUm2;
  };
  std::vector<Row> rows;
  for (size_t s = 0; s < shapes.size(); ++s) {
    const auto& out = batch.outcomes[s];
    const bool osc = out.ok() && out.result.get("oscillating") > 0.5;
    rows.push_back({shapes[s].name(), osc ? out.result.get("frequency") : 0.0,
                    out.result.get("peakToPeak"),
                    shapes[s].emitterArea() * 1e12});
  }

  u::Table table(
      {"Emitter size", "Shape of transistor", "Free-running frequency",
       "Output swing"});
  for (const auto& r : rows) {
    table.addRow({u::fixed(r.emitterSizeUm2, 1) + " um^2", r.shape,
                  r.freq > 0.0 ? u::formatFrequency(r.freq) : "no osc.",
                  u::fixed(r.swing, 2) + " V"});
  }
  table.print(std::cout);

  const auto best = std::max_element(
      rows.begin(), rows.end(),
      [](const Row& a, const Row& b) { return a.freq < b.freq; });
  std::cout << "\nBest shape: " << best->shape << " at "
            << u::formatFrequency(best->freq) << "\n"
            << "Paper's conclusion: \"the best shape for the transistors "
               "was N1.2-12D\" -> "
            << (best->shape == "N1.2-12D" ? "REPRODUCED" : "NOT reproduced")
            << "\n";

  if (!jsonPath.empty()) {
    u::JsonValue payload = u::JsonValue::object();
    payload.set("schema", "ahfic-bench-table1-v1");
    payload.set("bestShape", best->shape);
    payload.set("bestFrequencyHz", best->freq);
    u::JsonValue jRows = u::JsonValue::array();
    for (const auto& r : rows) {
      u::JsonValue e = u::JsonValue::object();
      e.set("shape", r.shape);
      e.set("frequencyHz", r.freq);
      e.set("peakToPeakV", r.swing);
      e.set("emitterAreaUm2", r.emitterSizeUm2);
      jRows.push(std::move(e));
    }
    payload.set("shapes", std::move(jRows));
    ahfic::obs::writeBenchFile(jsonPath, "table1_ring_osc",
                               std::move(payload),
                               ahfic::obs::benchTimestampUtc());
    std::cout << "\nwrote " << jsonPath << "\n";
  }

  const auto& m = batch.manifest;
  std::cout << "\n[runner] " << m.jobs.size() << " jobs on " << m.threads
            << " thread(s), " << u::fixed(m.wallMs, 0) << " ms, "
            << m.totalNewtonIterations() << " Newton iterations\n";
  obsOpts.finish(std::cout);
  return 0;
}
