// Reproduces Fig. 3 ("Frequency spectrum of double-super tuner") and the
// Fig. 4 system's effect on it.
//
// Part 1 — conventional tuner (Fig. 2): an input containing the tuned
// channel RF1 and the image channel RF2 is up-converted to rf1/rf2 at the
// 1st IF (both inside the band-pass) and down-converted; both land on the
// same 45 MHz 2nd IF — the image problem.
//
// Part 2 — image-rejection tuner (Fig. 4): the same input; the image's
// 2nd-IF contribution is suppressed by the quadrature mixer/combiner.

#include <iostream>

#include "ahdl/system.h"
#include "obs/cli.h"
#include "tuner/doublesuper.h"
#include "tuner/irr.h"
#include "util/fft.h"
#include "util/numeric.h"
#include "util/table.h"
#include "util/units.h"

namespace tn = ahfic::tuner;
namespace ah = ahfic::ahdl;
namespace u = ahfic::util;

namespace {

struct ChainResult {
  double firstIfWanted, firstIfImage;
  double secondIfWanted;         // wanted-only run
  double secondIfFromImage;      // image-only run
};

ChainResult measureChain(bool imageReject) {
  tn::FrequencyPlan plan;
  ChainResult r{};

  auto runOnce = [&](bool imageOnly, double& if1Wanted, double& if1Image,
                     double& if2Amp) {
    ah::System sys;
    tn::TunerStimulus stim;
    stim.rfTuned = 500e6;
    stim.tunedAmplitude = imageOnly ? 1e-30 : 1.0;
    stim.imageAmplitude = imageOnly ? 1.0 : 1e-30;
    tn::TunerSignals sigs;
    if (imageReject) {
      tn::ImageRejectImpairments imp;  // ideal hardware for the spectrum
      sigs = buildImageRejectTuner(sys, plan, stim, imp);
    } else {
      sigs = buildConventionalTuner(sys, plan, stim);
    }
    sys.probe(sigs.firstIf);
    sys.probe(sigs.secondIf);
    const double fs = tn::recommendedSampleRate(plan, stim);
    const auto res = sys.run(1.8e-6, fs, 0.8e-6);
    if1Wanted = u::toneAmplitude(res.trace(sigs.firstIf), fs, plan.if1);
    if1Image =
        u::toneAmplitude(res.trace(sigs.firstIf), fs, plan.if1Image());
    if2Amp = u::toneAmplitude(res.trace(sigs.secondIf), fs, plan.if2);
  };

  double dummy1, dummy2;
  runOnce(false, r.firstIfWanted, dummy1, r.secondIfWanted);
  runOnce(true, dummy2, r.firstIfImage, r.secondIfFromImage);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ahfic::obs::CliOptions obsOpts;
  for (int k = 1; k < argc; ++k) obsOpts.consume(argc, argv, k);
  obsOpts.begin();

  tn::FrequencyPlan plan;
  std::cout << "== Fig. 3: frequency plan of the double-super tuner ==\n"
            << "RF band:            " << u::formatFrequency(plan.rfMin)
            << " .. " << u::formatFrequency(plan.rfMax) << "\n"
            << "tuned channel RF1:  " << u::formatFrequency(500e6) << "\n"
            << "image channel RF2:  " << u::formatFrequency(plan.rfImage(500e6))
            << "\n"
            << "up LO (Fup):        " << u::formatFrequency(plan.upLo(500e6))
            << "\n"
            << "1st IF (wanted):    " << u::formatFrequency(plan.if1) << "\n"
            << "1st IF (image):     " << u::formatFrequency(plan.if1Image())
            << "\n"
            << "down LO (Fdown):    " << u::formatFrequency(plan.downLo())
            << "\n"
            << "2nd IF:             " << u::formatFrequency(plan.if2)
            << "  <- BOTH rf1 and rf2 land here\n\n";

  const auto conv = measureChain(/*imageReject=*/false);
  const auto rej = measureChain(/*imageReject=*/true);

  u::Table table({"Chain", "wanted @ 2nd IF", "image @ 2nd IF",
                  "image suppression"});
  auto db = [](double x) { return u::toDb(x); };
  table.addRow({"conventional (Fig. 2)",
                u::fixed(db(conv.secondIfWanted), 1) + " dB",
                u::fixed(db(conv.secondIfFromImage), 1) + " dB",
                u::fixed(db(conv.secondIfWanted) -
                             db(conv.secondIfFromImage),
                         1) +
                    " dB"});
  table.addRow({"image-reject (Fig. 4)",
                u::fixed(db(rej.secondIfWanted), 1) + " dB",
                u::fixed(db(rej.secondIfFromImage), 1) + " dB",
                u::fixed(db(rej.secondIfWanted) -
                             db(rej.secondIfFromImage),
                         1) +
                    " dB"});
  table.print(std::cout);

  std::cout << "\n1st-IF band-pass passes both tones (the filter cannot "
               "separate them):\n"
            << "  wanted at 1st IF: " << u::fixed(db(conv.firstIfWanted), 1)
            << " dB,  image at 1st IF: "
            << u::fixed(db(conv.firstIfImage), 1) << " dB\n"
            << "\nExpected shape (paper): the conventional chain passes "
               "the image onto the\n2nd IF nearly unattenuated; the "
               "image-rejection mixer suppresses it by the IRR.\n";
  obsOpts.finish(std::cout);
  return 0;
}
