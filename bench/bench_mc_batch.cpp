// Batched Monte-Carlo data-plane ablation: the scalar fT pipeline (one
// FtExtractor per die, fresh circuit + pattern priming + symbolic
// analysis per bisection evaluation) against spice::ReplicaBatch via
// BatchFtExtractor, with each speedup step measured on its own:
//
//   1. shared structure + SoA device evaluation (batched, but every
//      Newton iteration pays a pivoting full factorization),
//   2. batched refactorization replay on top of (1),
//   3. binary "ahfic-wave-v1" payload vs the equivalent JSON document.
//
// Every batched column is checked bit-identical (hex-float compare of
// vbe and ft) against the scalar kSparse reference for the same seeds.
// The "batched" column must match; "batched-full-factor" is NOT expected
// to — re-pivoting every iteration picks different pivots than the
// replayed first-iteration sequence the scalar path uses, so it differs
// in the last ulp. Emits BENCH_mc_batch.json; --json additionally prints
// the enveloped document to stdout for CI gating.
//
// Usage: bench_mc_batch [--out FILE] [--dies N] [--ic A] [--shape NAME]
//                       [--seed N] [--reps N] [--json]
//                       [--trace FILE] [--metrics FILE]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bjtgen/batchft.h"
#include "bjtgen/ft.h"
#include "bjtgen/montecarlo.h"
#include "obs/bench.h"
#include "obs/cli.h"
#include "runner/job.h"
#include "util/error.h"
#include "util/json.h"
#include "util/table.h"
#include "util/wave.h"

namespace bg = ahfic::bjtgen;
namespace rn = ahfic::runner;
namespace sp = ahfic::spice;
namespace u = ahfic::util;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string hexFloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// One die's outcome in a comparable shape across all pipelines.
struct DieOutcome {
  bool ok = false;
  double vbe = 0.0;
  double ft = 0.0;
};

bool bitIdentical(const std::vector<DieOutcome>& a,
                  const std::vector<DieOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r) {
    if (a[r].ok != b[r].ok) return false;
    if (!a[r].ok) continue;
    if (hexFloat(a[r].vbe) != hexFloat(b[r].vbe)) return false;
    if (hexFloat(a[r].ft) != hexFloat(b[r].ft)) return false;
  }
  return true;
}

/// One measured pipeline column.
struct Column {
  std::string name;
  double wallMs = 0.0;
  long newtonIterations = 0;
  std::vector<DieOutcome> dies;
  sp::BatchStats batch;  // zero-initialised for the scalar column
};

std::vector<sp::BjtModel> drawCards(int dies, std::uint64_t baseSeed,
                                    const std::string& shape) {
  // Same draw as the runner pipelines: die d's card comes from
  // deriveJobSeed(baseSeed, d) — both the scalar job at index d and the
  // batched block covering d see this exact card.
  std::vector<sp::BjtModel> cards;
  cards.reserve(static_cast<size_t>(dies));
  for (int d = 0; d < dies; ++d) {
    const auto gen = bg::dieGenerator(
        bg::defaultTechnology(), bg::ProcessVariation{},
        rn::deriveJobSeed(baseSeed, static_cast<std::uint64_t>(d)));
    cards.push_back(gen.generate(shape));
  }
  return cards;
}

Column runScalar(const std::vector<sp::BjtModel>& cards, double ic,
                 const sp::AnalysisOptions& opts) {
  Column col;
  col.name = "scalar";
  col.dies.resize(cards.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t d = 0; d < cards.size(); ++d) {
    bg::FtExtractor fx(cards[d], 2.0, opts);
    try {
      const bg::FtPoint pt = fx.measureAnalyticAt(ic);
      col.dies[d] = {true, pt.vbe, pt.ft};
    } catch (const ahfic::Error&) {
      col.dies[d] = {false, 0.0, 0.0};
    }
    col.newtonIterations += fx.solverStats().newtonIterations;
  }
  col.wallMs = msSince(t0);
  return col;
}

Column runBatched(const std::string& name,
                  const std::vector<sp::BjtModel>& cards, double ic,
                  const sp::AnalysisOptions& opts, bool forceFullFactor) {
  Column col;
  col.name = name;
  const auto t0 = std::chrono::steady_clock::now();
  bg::BatchFtExtractor bx(cards, 2.0, opts, forceFullFactor);
  const auto block = bx.measureAnalyticAt(ic);
  col.wallMs = msSince(t0);
  col.newtonIterations = bx.solverStats().newtonIterations;
  col.batch = bx.batchStats();
  col.dies.resize(block.size());
  for (size_t d = 0; d < block.size(); ++d)
    col.dies[d] = {block[d].ok, block[d].point.vbe, block[d].point.ft};
  return col;
}

u::WaveTable waveOf(const Column& col, double ic) {
  u::WaveTable t;
  std::vector<double> wDie, wIc, wVbe, wFt;
  for (size_t d = 0; d < col.dies.size(); ++d) {
    if (!col.dies[d].ok) continue;
    wDie.push_back(static_cast<double>(d));
    wIc.push_back(ic);
    wVbe.push_back(col.dies[d].vbe);
    wFt.push_back(col.dies[d].ft);
  }
  t.addColumn("die", std::move(wDie));
  t.addColumn("ic", std::move(wIc));
  t.addColumn("vbe", std::move(wVbe));
  t.addColumn("ft", std::move(wFt));
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_mc_batch.json";
  std::string shape = "N1.2-12D";
  int dies = 64;
  double ic = 3e-3;
  unsigned long long seed = 1;  // RunnerOptions::baseSeed default
  int reps = 3;
  bool jsonOut = false;
  ahfic::obs::CliOptions obsOpts;
  for (int k = 1; k < argc; ++k) {
    if (obsOpts.consume(argc, argv, k)) continue;
    if (std::strcmp(argv[k], "--out") == 0 && k + 1 < argc)
      outPath = argv[++k];
    else if (std::strcmp(argv[k], "--dies") == 0 && k + 1 < argc)
      dies = std::atoi(argv[++k]);
    else if (std::strcmp(argv[k], "--ic") == 0 && k + 1 < argc)
      ic = std::atof(argv[++k]);
    else if (std::strcmp(argv[k], "--shape") == 0 && k + 1 < argc)
      shape = argv[++k];
    else if (std::strcmp(argv[k], "--seed") == 0 && k + 1 < argc)
      seed = std::strtoull(argv[++k], nullptr, 0);
    else if (std::strcmp(argv[k], "--reps") == 0 && k + 1 < argc)
      reps = std::atoi(argv[++k]);
    else if (std::strcmp(argv[k], "--json") == 0)
      jsonOut = true;
  }
  obsOpts.begin();
  std::ostream& os = jsonOut ? std::cerr : std::cout;

  os << "== Monte-Carlo data plane: scalar vs batched fT extraction ==\n"
     << "(" << dies << " dies of " << shape << " at Ic = " << ic
     << " A, seed " << seed << ")\n\n";

  const auto cards = drawCards(dies, seed, shape);
  sp::AnalysisOptions opts;
  opts.solver = sp::SolverKind::kSparse;  // the bit-identity reference

  // Best-of-reps wall time: the results are deterministic rep to rep, so
  // the minimum is the least-noisy throughput estimate on a shared host.
  if (reps < 1) reps = 1;
  Column scalar = runScalar(cards, ic, opts);
  Column batchedFf = runBatched("batched-full-factor", cards, ic, opts, true);
  Column batched = runBatched("batched", cards, ic, opts, false);
  for (int k = 1; k < reps; ++k) {
    scalar.wallMs = std::min(scalar.wallMs, runScalar(cards, ic, opts).wallMs);
    batchedFf.wallMs = std::min(
        batchedFf.wallMs,
        runBatched("batched-full-factor", cards, ic, opts, true).wallMs);
    batched.wallMs = std::min(
        batched.wallMs, runBatched("batched", cards, ic, opts, false).wallMs);
  }

  u::Table table({"pipeline", "wall [ms]", "dies/s", "speedup",
                  "newton iters", "bit-identical"});
  u::JsonValue cols = u::JsonValue::array();
  for (const Column* col : {&scalar, &batchedFf, &batched}) {
    const double diesPerSec =
        col->wallMs > 0.0 ? dies / (col->wallMs * 1e-3) : 0.0;
    const double speedup =
        col->wallMs > 0.0 ? scalar.wallMs / col->wallMs : 0.0;
    const bool identical = bitIdentical(scalar.dies, col->dies);
    table.addRow({col->name, u::fixed(col->wallMs, 1),
                  u::fixed(diesPerSec, 1), u::fixed(speedup, 2) + "x",
                  std::to_string(col->newtonIterations),
                  identical ? "yes" : "NO"});
    u::JsonValue c = u::JsonValue::object();
    c.set("name", col->name);
    c.set("wallMs", col->wallMs);
    c.set("diesPerSec", diesPerSec);
    c.set("speedup", speedup);
    c.set("newtonIterations", static_cast<double>(col->newtonIterations));
    c.set("bitIdentical", identical);
    if (col != &scalar) {
      c.set("fullFactors", static_cast<double>(col->batch.fullFactors));
      c.set("refactors", static_cast<double>(col->batch.refactors));
      c.set("pivotCollapses",
            static_cast<double>(col->batch.pivotCollapses));
      c.set("fallbacks", static_cast<double>(col->batch.fallbacks));
      c.set("patternInserts",
            static_cast<double>(col->batch.patternInserts));
    }
    cols.push(std::move(c));
  }
  table.print(os);
  os << "\n";

  // Ablation: each step's own contribution.
  const double soaSpeedup =
      batchedFf.wallMs > 0.0 ? scalar.wallMs / batchedFf.wallMs : 0.0;
  const double replaySpeedup =
      batched.wallMs > 0.0 ? batchedFf.wallMs / batched.wallMs : 0.0;
  os << "ablation: shared structure + SoA eval   "
     << u::fixed(soaSpeedup, 2) << "x\n"
     << "          refactorization replay         "
     << u::fixed(replaySpeedup, 2) << "x (on top)\n\n";

  // Step 3: the waveform payload, binary vs JSON, on the batched result.
  const u::WaveTable wave = waveOf(batched, ic);
  const int waveReps = 512;
  const auto tb0 = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> bytes;
  for (int k = 0; k < waveReps; ++k) bytes = u::encodeWave(wave);
  const double binEncNs = msSince(tb0) * 1e6 / waveReps;
  const auto tb1 = std::chrono::steady_clock::now();
  u::WaveTable binBack;
  for (int k = 0; k < waveReps; ++k) binBack = u::decodeWave(bytes);
  const double binDecNs = msSince(tb1) * 1e6 / waveReps;
  const bool binIdentical = binBack.bitIdentical(wave);

  const auto tj0 = std::chrono::steady_clock::now();
  std::string jsonText;
  for (int k = 0; k < waveReps; ++k) jsonText = u::waveToJson(wave).dump(0);
  const double jsonEncNs = msSince(tj0) * 1e6 / waveReps;
  const auto tj1 = std::chrono::steady_clock::now();
  u::WaveTable jsonBack;
  for (int k = 0; k < waveReps; ++k)
    jsonBack = u::waveFromJson(u::parseJson(jsonText));
  const double jsonDecNs = msSince(tj1) * 1e6 / waveReps;
  const bool jsonIdentical = jsonBack.bitIdentical(wave);

  u::Table wtab({"payload", "bytes", "encode [us]", "decode [us]",
                 "round-trip bit-identical"});
  wtab.addRow({"ahfic-wave-v1", std::to_string(bytes.size()),
               u::fixed(binEncNs * 1e-3, 1), u::fixed(binDecNs * 1e-3, 1),
               binIdentical ? "yes" : "NO"});
  wtab.addRow({"json", std::to_string(jsonText.size()),
               u::fixed(jsonEncNs * 1e-3, 1), u::fixed(jsonDecNs * 1e-3, 1),
               jsonIdentical ? "yes" : "no (decimal)"});
  wtab.print(os);
  os << "\n";

  u::JsonValue doc = u::JsonValue::object();
  doc.set("schema", "ahfic-bench-mc-batch-v1");
  doc.set("dies", static_cast<double>(dies));
  doc.set("shape", shape);
  doc.set("ic", ic);
  doc.set("seed", static_cast<double>(seed));
  doc.set("columns", std::move(cols));
  u::JsonValue abl = u::JsonValue::array();
  {
    u::JsonValue s1 = u::JsonValue::object();
    s1.set("step", "shared-structure+soa-eval");
    s1.set("speedup", soaSpeedup);
    abl.push(std::move(s1));
    u::JsonValue s2 = u::JsonValue::object();
    s2.set("step", "refactor-replay");
    s2.set("speedup", replaySpeedup);
    abl.push(std::move(s2));
  }
  doc.set("ablation", std::move(abl));
  u::JsonValue wv = u::JsonValue::object();
  wv.set("binaryBytes", static_cast<double>(bytes.size()));
  wv.set("jsonBytes", static_cast<double>(jsonText.size()));
  wv.set("binaryEncodeNs", binEncNs);
  wv.set("binaryDecodeNs", binDecNs);
  wv.set("jsonEncodeNs", jsonEncNs);
  wv.set("jsonDecodeNs", jsonDecNs);
  wv.set("binaryRoundTripBitIdentical", binIdentical);
  wv.set("jsonRoundTripBitIdentical", jsonIdentical);
  doc.set("wave", std::move(wv));
  // CI gate conveniences.
  doc.set("batchedSpeedup",
          batched.wallMs > 0.0 ? scalar.wallMs / batched.wallMs : 0.0);
  doc.set("bitIdentical", bitIdentical(scalar.dies, batched.dies));
  doc.set("patternInserts",
          static_cast<double>(batched.batch.patternInserts));

  const std::string stamp = ahfic::obs::benchTimestampUtc();
  const u::JsonValue envelope =
      ahfic::obs::benchEnvelope("mc_batch", doc, stamp);
  ahfic::obs::writeBenchFile(outPath, "mc_batch", std::move(doc), stamp);
  os << "wrote " << outPath << "\n";
  if (jsonOut) std::cout << envelope.dump(1) << "\n";
  obsOpts.finish(os);
  return 0;
}
