// bench_regress — the perf-regression gate over "ahfic-bench-v1"
// artifacts (src/obs/regress.h holds the policy core; docs/profiling.md
// the workflow).
//
//   bench_regress check ART.json...   compare against blessed baselines
//   bench_regress bless ART.json...   fold artifacts into new baselines
//
// `check` groups the artifacts by bench name, folds each group best-of-K
// (min for timings, max for speedups), and compares the folded candidate
// against <baselines>/<bench>.json under the committed gate policy
// (<baselines>/gates.json). Exit codes are CI-friendly:
//   0  no gated metric regressed (or no baseline existed — see below)
//   1  at least one gated, non-waived metric regressed
//   2  usage / unreadable artifact / schema error
//   3  a baseline was missing and --require-baseline was given
//
// Baselines are machine-specific (nanoseconds do not travel between
// hosts), so a missing baseline is a *skip*, not a failure: the first
// run on a fresh runner blesses, later runs gate.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench.h"
#include "obs/regress.h"
#include "util/error.h"
#include "util/json.h"

namespace {

namespace u = ahfic::util;
namespace obs = ahfic::obs;

int usage() {
  std::cerr
      << "usage: bench_regress check ARTIFACT.json... [options]\n"
         "       bench_regress bless ARTIFACT.json... [options]\n"
         "options:\n"
         "  --baselines DIR     baseline directory "
         "(default bench/baselines)\n"
         "  --gates FILE        gate policy (default DIR/gates.json)\n"
         "  --json FILE         write the ahfic-regress-v1 report(s) "
         "(check only)\n"
         "  --require-baseline  exit 3 instead of skipping when a bench "
         "has no baseline\n";
  return 2;
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ahfic::Error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

u::JsonValue loadJsonFile(const std::string& path) {
  try {
    return u::parseJson(readWholeFile(path));
  } catch (const ahfic::Error& e) {
    throw ahfic::Error(path + ": " + e.what());
  }
}

/// Bench name out of an "ahfic-bench-v1" envelope; throws on anything
/// that is not one.
std::string envelopeName(const u::JsonValue& env, const std::string& path) {
  if (!env.isObject() || !env.has("schema") ||
      env.get("schema").asString() != "ahfic-bench-v1" ||
      !env.has("name") || !env.has("payload"))
    throw ahfic::Error(path + ": not an ahfic-bench-v1 envelope");
  return env.get("name").asString();
}

struct Options {
  std::string command;
  std::vector<std::string> artifacts;
  std::string baselinesDir = "bench/baselines";
  std::string gatesFile;  // default: baselinesDir + "/gates.json"
  std::string jsonOut;
  bool requireBaseline = false;
};

bool parseArgs(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  if (opts.command != "check" && opts.command != "bless") return false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) {
      if (i + 1 >= argc)
        throw ahfic::Error(std::string(flag) + " needs a value");
      return std::string(argv[++i]);
    };
    if (arg == "--baselines")
      opts.baselinesDir = value("--baselines");
    else if (arg == "--gates")
      opts.gatesFile = value("--gates");
    else if (arg == "--json")
      opts.jsonOut = value("--json");
    else if (arg == "--require-baseline")
      opts.requireBaseline = true;
    else if (!arg.empty() && arg[0] == '-')
      throw ahfic::Error("unknown flag '" + arg + "'");
    else
      opts.artifacts.push_back(arg);
  }
  if (opts.gatesFile.empty())
    opts.gatesFile = opts.baselinesDir + "/gates.json";
  return !opts.artifacts.empty();
}

/// Artifacts grouped by bench name, in first-seen order.
std::vector<std::pair<std::string, std::vector<u::JsonValue>>> groupByBench(
    const std::vector<std::string>& paths) {
  std::vector<std::pair<std::string, std::vector<u::JsonValue>>> groups;
  for (const std::string& path : paths) {
    u::JsonValue env = loadJsonFile(path);
    const std::string name = envelopeName(env, path);
    auto it = groups.begin();
    for (; it != groups.end(); ++it)
      if (it->first == name) break;
    if (it == groups.end()) {
      groups.emplace_back(name, std::vector<u::JsonValue>{});
      it = groups.end() - 1;
    }
    it->second.push_back(std::move(env));
  }
  return groups;
}

void writeTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ahfic::Error("cannot write '" + path + "'");
  out << text;
  if (!out) throw ahfic::Error("write to '" + path + "' failed");
}

int runBless(const Options& opts, const obs::GateConfig& gates) {
  const auto groups = groupByBench(opts.artifacts);
  for (const auto& [bench, envelopes] : groups) {
    const obs::BenchGates* g = gates.find(bench);
    if (g == nullptr) {
      std::cout << "bless: bench '" << bench
                << "' has no gate policy in " << opts.gatesFile
                << "; skipped\n";
      continue;
    }
    const obs::BaselineDoc doc = obs::reduceArtifacts(envelopes, *g);
    const std::string path = opts.baselinesDir + "/" + bench + ".json";
    writeTextFile(path, doc.toJson().dump(2) + "\n");
    std::cout << "blessed " << path << " (" << doc.repeats
              << " artifact" << (doc.repeats == 1 ? "" : "s") << ", "
              << doc.metrics.size() << " metrics)\n";
  }
  return 0;
}

int runCheck(const Options& opts, const obs::GateConfig& gates) {
  const auto groups = groupByBench(opts.artifacts);
  bool regressed = false;
  bool missingBaseline = false;
  u::JsonValue reports = u::JsonValue::array();

  for (const auto& [bench, envelopes] : groups) {
    const obs::BenchGates* g = gates.find(bench);
    if (g == nullptr) {
      std::cout << "check: bench '" << bench
                << "' has no gate policy; skipped\n";
      continue;
    }
    const obs::BaselineDoc current = obs::reduceArtifacts(envelopes, *g);

    const std::string basePath =
        opts.baselinesDir + "/" + bench + ".json";
    obs::BaselineDoc baseline;
    try {
      baseline = obs::BaselineDoc::fromJson(loadJsonFile(basePath));
    } catch (const ahfic::Error& e) {
      // Distinguish "no baseline yet" (skip) from "corrupt baseline"
      // (hard error): only an unopenable file is a skip.
      std::ifstream probe(basePath);
      if (probe) throw ahfic::Error(std::string("bad baseline: ") +
                                    e.what());
      std::cout << "check: no baseline for '" << bench << "' ("
                << basePath << " absent); "
                << (opts.requireBaseline ? "required" : "skipped")
                << " — bless one with: bench_regress bless ...\n";
      missingBaseline = true;
      continue;
    }
    if (baseline.bench != bench)
      throw ahfic::Error("baseline " + basePath + " is for bench '" +
                         baseline.bench + "'");

    const obs::RegressReport report =
        obs::compareToBaseline(baseline, current, *g);
    std::cout << "== " << bench << " (baseline " << baseline.gitRev
              << " @ " << baseline.timestamp << ", best of "
              << baseline.repeats << ") ==\n"
              << report.summary();
    reports.push(report.toJson());
    if (report.anyRegression()) regressed = true;
  }

  if (!opts.jsonOut.empty()) {
    u::JsonValue doc = u::JsonValue::object();
    doc.set("schema", "ahfic-regress-set-v1");
    doc.set("gitRev", obs::buildGitRev());
    doc.set("reports", std::move(reports));
    writeTextFile(opts.jsonOut, doc.dump(2) + "\n");
    std::cout << "wrote " << opts.jsonOut << "\n";
  }

  if (regressed) {
    std::cout << "RESULT: REGRESSED\n";
    return 1;
  }
  if (missingBaseline && opts.requireBaseline) {
    std::cout << "RESULT: MISSING BASELINE\n";
    return 3;
  }
  std::cout << "RESULT: OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    if (!parseArgs(argc, argv, opts)) return usage();
    const obs::GateConfig gates =
        obs::GateConfig::fromJson(loadJsonFile(opts.gatesFile));
    return opts.command == "bless" ? runBless(opts, gates)
                                   : runCheck(opts, gates);
  } catch (const std::exception& e) {
    std::cerr << "bench_regress: " << e.what() << "\n";
    return 2;
  }
}
