// Reproduces Fig. 9: "Transition frequency vs collector current for npn
// transistors" — fT(Ic) curves for the N1.2-{6,12,24,48}D family, each
// simulated with its geometry-generated model card.
//
// The headline behaviour to reproduce: all shapes share a similar peak fT
// (same vertical profile) while the collector current at the peak scales
// with the emitter area — so a circuit running at a fixed current must
// pick the shape whose peak sits at that current.
//
// The sweep runs through the batch runner (one job per shape x current
// point plus one peak-search job per shape); results are identical for
// any worker count.
// Usage: bench_fig9_ft_vs_ic [--jobs N] [--json FILE]
//                            [--trace FILE] [--metrics FILE]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bjtgen/generator.h"
#include "obs/bench.h"
#include "obs/cli.h"
#include "runner/engine.h"
#include "runner/workloads.h"
#include "util/json.h"
#include "util/table.h"
#include "util/units.h"

namespace bg = ahfic::bjtgen;
namespace rn = ahfic::runner;
namespace u = ahfic::util;

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = hardware concurrency
  std::string jsonPath;
  ahfic::obs::CliOptions obsOpts;
  for (int k = 1; k < argc; ++k) {
    if (obsOpts.consume(argc, argv, k)) continue;
    if (std::strcmp(argv[k], "--jobs") == 0 && k + 1 < argc)
      jobs = std::atoi(argv[++k]);
    else if (std::strcmp(argv[k], "--json") == 0 && k + 1 < argc)
      jsonPath = argv[++k];
  }
  obsOpts.begin();

  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  const auto shapes = bg::fig9Shapes();

  std::cout << "== Fig. 9: fT vs Ic (geometry-generated model cards) ==\n"
            << "(fT in GHz, from AC h21 single-pole extrapolation at "
               "Vce = 2 V)\n\n";

  // Log-spaced current grid covering all four shapes.
  std::vector<double> currents;
  for (double ic = 0.05e-3; ic <= 20.001e-3; ic *= std::pow(10.0, 0.125))
    currents.push_back(ic);

  rn::RunnerOptions ropts;
  ropts.threads = jobs;
  ropts.useCache = false;  // one-shot sweep; nothing to reuse
  rn::BatchRunner runner(ropts);

  // Sweep points and the per-shape peak searches in one batch.
  auto batchJobs = rn::fig9SweepJobs(gen, shapes, currents);
  const size_t sweepCount = batchJobs.size();
  for (auto& job : rn::ftPeakJobs(gen, shapes, 0.05e-3, 40e-3, 19))
    batchJobs.push_back(std::move(job));
  const auto batch = runner.run(batchJobs);

  std::vector<std::string> header = {"Ic [mA]"};
  for (const auto& s : shapes) header.push_back(s.name());
  u::Table table(header);

  for (size_t k = 0; k < currents.size(); ++k) {
    std::vector<std::string> row = {u::fixed(currents[k] * 1e3, 2)};
    for (size_t s = 0; s < shapes.size(); ++s) {
      const auto& out = batch.outcomes[s * currents.size() + k];
      if (out.ok() && !out.result.has("skipped")) {
        row.push_back(u::fixed(out.result.get("ft") / 1e9, 2));
      } else {
        row.push_back("-");
      }
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\n== Peak summary (the paper's point: peak-fT current "
               "depends on shape) ==\n\n";
  u::Table peaks({"Shape", "peak fT", "Ic @ peak", "emitter area"});
  for (size_t s = 0; s < shapes.size(); ++s) {
    const auto& out = batch.outcomes[sweepCount + s];
    peaks.addRow({shapes[s].name(),
                  out.ok() ? u::formatFrequency(out.result.get("ftPeak"))
                           : "failed",
                  u::fixed(out.result.get("icPeak") * 1e3, 2) + " mA",
                  u::fixed(shapes[s].emitterArea() * 1e12, 1) + " um^2"});
  }
  peaks.print(std::cout);

  if (!jsonPath.empty()) {
    // "ahfic-bench-fig9-v1" payload inside the common bench envelope:
    // one entry per shape with its fT(Ic) curve and peak summary.
    u::JsonValue payload = u::JsonValue::object();
    payload.set("schema", "ahfic-bench-fig9-v1");
    u::JsonValue jShapes = u::JsonValue::array();
    for (size_t s = 0; s < shapes.size(); ++s) {
      u::JsonValue e = u::JsonValue::object();
      e.set("name", shapes[s].name());
      e.set("emitterAreaUm2", shapes[s].emitterArea() * 1e12);
      const auto& peak = batch.outcomes[sweepCount + s];
      e.set("ftPeakHz", peak.ok() ? peak.result.get("ftPeak") : 0.0);
      e.set("icPeakA", peak.ok() ? peak.result.get("icPeak") : 0.0);
      u::JsonValue icArr = u::JsonValue::array();
      u::JsonValue ftArr = u::JsonValue::array();
      for (size_t k = 0; k < currents.size(); ++k) {
        const auto& out = batch.outcomes[s * currents.size() + k];
        if (!out.ok() || out.result.has("skipped")) continue;
        icArr.push(currents[k]);
        ftArr.push(out.result.get("ft"));
      }
      e.set("icA", std::move(icArr));
      e.set("ftHz", std::move(ftArr));
      jShapes.push(std::move(e));
    }
    payload.set("shapes", std::move(jShapes));
    ahfic::obs::writeBenchFile(jsonPath, "fig9_ft_vs_ic", std::move(payload),
                               ahfic::obs::benchTimestampUtc());
    std::cout << "\nwrote " << jsonPath << "\n";
  }

  const auto& m = batch.manifest;
  std::cout << "\nExpected shape (paper): peak fT roughly constant across "
               "the family;\npeak-current grows with emitter length "
               "(~2x per step).\n";
  std::cout << "\n[runner] " << m.jobs.size() << " jobs on " << m.threads
            << " thread(s): " << m.countWithStatus(rn::JobStatus::kOk)
            << " ok, " << m.countWithStatus(rn::JobStatus::kRecovered)
            << " recovered, " << m.countWithStatus(rn::JobStatus::kFailed)
            << " failed, " << u::fixed(m.wallMs, 0) << " ms ("
            << u::fixed(m.throughputJobsPerSec(), 1) << " jobs/s)\n";
  obsOpts.finish(std::cout);
  return 0;
}
