// Reproduces Fig. 9: "Transition frequency vs collector current for npn
// transistors" — fT(Ic) curves for the N1.2-{6,12,24,48}D family, each
// simulated with its geometry-generated model card.
//
// The headline behaviour to reproduce: all shapes share a similar peak fT
// (same vertical profile) while the collector current at the peak scales
// with the emitter area — so a circuit running at a fixed current must
// pick the shape whose peak sits at that current.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bjtgen/ft.h"
#include "bjtgen/generator.h"
#include "util/table.h"
#include "util/units.h"

namespace bg = ahfic::bjtgen;
namespace u = ahfic::util;

int main() {
  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  const auto shapes = bg::fig9Shapes();

  std::cout << "== Fig. 9: fT vs Ic (geometry-generated model cards) ==\n"
            << "(fT in GHz, from AC h21 single-pole extrapolation at "
               "Vce = 2 V)\n\n";

  // Log-spaced current grid covering all four shapes.
  std::vector<double> currents;
  for (double ic = 0.05e-3; ic <= 20.001e-3; ic *= std::pow(10.0, 0.125))
    currents.push_back(ic);

  std::vector<std::string> header = {"Ic [mA]"};
  for (const auto& s : shapes) header.push_back(s.name());
  u::Table table(header);

  std::vector<bg::FtExtractor> extractors;
  extractors.reserve(shapes.size());
  for (const auto& s : shapes) extractors.emplace_back(gen.generate(s));

  for (double ic : currents) {
    std::vector<std::string> row = {u::fixed(ic * 1e3, 2)};
    for (size_t k = 0; k < shapes.size(); ++k) {
      if (ic < 0.9 * extractors[k].maxBiasCurrent()) {
        row.push_back(u::fixed(extractors[k].measureAt(ic).ft / 1e9, 2));
      } else {
        row.push_back("-");
      }
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\n== Peak summary (the paper's point: peak-fT current "
               "depends on shape) ==\n\n";
  u::Table peaks({"Shape", "peak fT", "Ic @ peak", "emitter area"});
  for (size_t k = 0; k < shapes.size(); ++k) {
    const auto pk = extractors[k].findPeak(0.05e-3, 40e-3, 19);
    peaks.addRow({shapes[k].name(), u::formatFrequency(pk.ftPeak),
                  u::fixed(pk.icPeak * 1e3, 2) + " mA",
                  u::fixed(shapes[k].emitterArea() * 1e12, 1) + " um^2"});
  }
  peaks.print(std::cout);
  std::cout << "\nExpected shape (paper): peak fT roughly constant across "
               "the family;\npeak-current grows with emitter length "
               "(~2x per step).\n";
  return 0;
}
