// Engineering micro-benchmarks (google-benchmark): the solver and engine
// kernels underlying the paper-reproduction benches, including the
// dense-vs-sparse MNA ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "ahdl/blocks.h"
#include "ahdl/system.h"
#include "bjtgen/generator.h"
#include "bjtgen/ringosc.h"
#include "celldb/database.h"
#include "celldb/seed.h"
#include "obs/cli.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/linalg.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "util/fft.h"
#include "util/numeric.h"

namespace sp = ahfic::spice;
namespace ah = ahfic::ahdl;
namespace bg = ahfic::bjtgen;
namespace cd = ahfic::celldb;
namespace u = ahfic::util;

namespace {

void fillSystem(int n, sp::DenseMatrix<double>& a,
                sp::SparseMatrix<double>& s, std::vector<double>& b) {
  u::Rng rng(static_cast<std::uint64_t>(n));
  a = sp::DenseMatrix<double>(n, n);
  s = sp::SparseMatrix<double>(n);
  b.assign(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // MNA-like fill: strong diagonal, ~5 off-diagonals per row.
      double v = 0.0;
      if (i == j)
        v = 10.0 + rng.uniform();
      else if (rng.uniform() < 5.0 / n)
        v = rng.uniform(-1, 1);
      if (v != 0.0) {
        a.at(i, j) = v;
        s.add(i, j, v);
      }
    }
    b[static_cast<size_t>(i)] = rng.uniform(-1, 1);
  }
}

void BM_DenseLuSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sp::DenseMatrix<double> a;
  sp::SparseMatrix<double> s;
  std::vector<double> b;
  fillSystem(n, a, s, b);
  for (auto _ : state) {
    auto aCopy = a;
    std::vector<int> perm;
    aCopy.luFactor(perm);
    std::vector<double> x;
    aCopy.luSolve(perm, b, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SparseSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sp::DenseMatrix<double> a;
  sp::SparseMatrix<double> s;
  std::vector<double> b;
  fillSystem(n, a, s, b);
  for (auto _ : state) {
    auto sCopy = s;
    auto bCopy = b;
    std::vector<double> x;
    sCopy.solveInPlace(bCopy, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SparseSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SpiceOperatingPoint(benchmark::State& state) {
  // The Fig. 11 ring oscillator's DC solve (~100 unknowns, 20 BJTs).
  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  bg::RingOscillatorSpec spec;
  spec.diffPairModel = gen.generate("N1.2-12D");
  spec.followerModel = gen.generate("N1.2-6D");
  for (auto _ : state) {
    sp::Circuit ckt;
    bg::buildRingOscillator(ckt, spec);
    sp::Analyzer an(ckt);
    auto x = an.op();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SpiceOperatingPoint);

void BM_SpiceTransientRcStep(benchmark::State& state) {
  for (auto _ : state) {
    sp::Circuit ckt;
    const int in = ckt.node("in"), out = ckt.node("out");
    ckt.add<sp::VSource>("V1", in, 0,
                         std::make_unique<sp::PulseWaveform>(
                             0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
    ckt.add<sp::Resistor>("R1", in, out, 1e3);
    ckt.add<sp::Capacitor>("C1", out, 0, 1e-9);
    sp::Analyzer an(ckt);
    auto tr = an.transient(5e-6, 10e-9);
    benchmark::DoNotOptimize(tr);
  }
}
BENCHMARK(BM_SpiceTransientRcStep);

void BM_AhdlStepThroughput(benchmark::State& state) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"rf"}, "src", 100e6, 1.0);
  sys.add<ah::SineSource>({}, {"lo"}, "lo", 145e6, 1.0);
  sys.add<ah::Mixer>({"rf", "lo"}, {"mix"}, "m", 2.0);
  sys.add<ah::FilterBlock>({"mix"}, {"out"}, "f",
                           ah::FilterBlock::Kind::kLowpass, 3, 80e6);
  sys.probe("out");
  for (auto _ : state) {
    auto res = sys.run(10e-6, 2e9);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_AhdlStepThroughput);

void BM_CellDbSearch(benchmark::State& state) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  for (auto _ : state) {
    auto hits = db.search("gain");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_CellDbSearch);

void BM_Fft4096(benchmark::State& state) {
  u::Rng rng(1);
  std::vector<double> sig(4096);
  for (auto& x : sig) x = rng.normal();
  for (auto _ : state) {
    auto spec = u::amplitudeSpectrum(sig, 1e9);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_Fft4096);

}  // namespace

// Expanded BENCHMARK_MAIN(): the obs flags are stripped before
// google-benchmark parses the remainder, so `--trace`/`--metrics` compose
// with `--benchmark_filter=...` etc.
int main(int argc, char** argv) {
  ahfic::obs::CliOptions obsOpts;
  std::vector<char*> rest = {argv[0]};
  for (int k = 1; k < argc; ++k) {
    if (!obsOpts.consume(argc, argv, k)) rest.push_back(argv[k]);
  }
  obsOpts.begin();

  int restArgc = static_cast<int>(rest.size());
  benchmark::Initialize(&restArgc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(restArgc, rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  obsOpts.finish(std::cout);
  return 0;
}
