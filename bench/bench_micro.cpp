// Engineering micro-benchmarks (google-benchmark): the solver and engine
// kernels underlying the paper-reproduction benches, including the
// dense-vs-sparse MNA ablation called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ahdl/blocks.h"
#include "ahdl/system.h"
#include "bjtgen/generator.h"
#include "bjtgen/ringosc.h"
#include "celldb/database.h"
#include "celldb/seed.h"
#include "obs/bench.h"
#include "obs/cli.h"
#include "spice/analysis.h"
#include "spice/circuit.h"
#include "spice/csr.h"
#include "spice/diode.h"
#include "spice/linalg.h"
#include "spice/passive.h"
#include "spice/sources.h"
#include "spice/solution.h"
#include "spice/sparse_lu.h"
#include "spice/stamp.h"
#include "util/fft.h"
#include "util/json.h"
#include "util/numeric.h"
#include "util/table.h"
#include "util/units.h"

namespace sp = ahfic::spice;
namespace ah = ahfic::ahdl;
namespace bg = ahfic::bjtgen;
namespace cd = ahfic::celldb;
namespace u = ahfic::util;

namespace {

void fillSystem(int n, sp::DenseMatrix<double>& a,
                sp::SparseMatrix<double>& s, std::vector<double>& b) {
  u::Rng rng(static_cast<std::uint64_t>(n));
  a = sp::DenseMatrix<double>(n, n);
  s = sp::SparseMatrix<double>(n);
  b.assign(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // MNA-like fill: strong diagonal, ~5 off-diagonals per row.
      double v = 0.0;
      if (i == j)
        v = 10.0 + rng.uniform();
      else if (rng.uniform() < 5.0 / n)
        v = rng.uniform(-1, 1);
      if (v != 0.0) {
        a.at(i, j) = v;
        s.add(i, j, v);
      }
    }
    b[static_cast<size_t>(i)] = rng.uniform(-1, 1);
  }
}

void BM_DenseLuSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sp::DenseMatrix<double> a;
  sp::SparseMatrix<double> s;
  std::vector<double> b;
  fillSystem(n, a, s, b);
  for (auto _ : state) {
    auto aCopy = a;
    std::vector<int> perm;
    aCopy.luFactor(perm);
    std::vector<double> x;
    aCopy.luSolve(perm, b, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SparseSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sp::DenseMatrix<double> a;
  sp::SparseMatrix<double> s;
  std::vector<double> b;
  fillSystem(n, a, s, b);
  for (auto _ : state) {
    auto sCopy = s;
    auto bCopy = b;
    std::vector<double> x;
    sCopy.solveInPlace(bCopy, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SparseSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SpiceOperatingPoint(benchmark::State& state) {
  // The Fig. 11 ring oscillator's DC solve (~100 unknowns, 20 BJTs).
  const auto gen = bg::ModelGenerator::withDefaultTechnology();
  bg::RingOscillatorSpec spec;
  spec.diffPairModel = gen.generate("N1.2-12D");
  spec.followerModel = gen.generate("N1.2-6D");
  for (auto _ : state) {
    sp::Circuit ckt;
    bg::buildRingOscillator(ckt, spec);
    sp::Analyzer an(ckt);
    auto x = an.op();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_SpiceOperatingPoint);

void BM_SpiceTransientRcStep(benchmark::State& state) {
  for (auto _ : state) {
    sp::Circuit ckt;
    const int in = ckt.node("in"), out = ckt.node("out");
    ckt.add<sp::VSource>("V1", in, 0,
                         std::make_unique<sp::PulseWaveform>(
                             0.0, 1.0, 0.0, 1e-12, 1e-12, 1.0, 2.0));
    ckt.add<sp::Resistor>("R1", in, out, 1e3);
    ckt.add<sp::Capacitor>("C1", out, 0, 1e-9);
    sp::Analyzer an(ckt);
    auto tr = an.transient(5e-6, 10e-9);
    benchmark::DoNotOptimize(tr);
  }
}
BENCHMARK(BM_SpiceTransientRcStep);

void BM_AhdlStepThroughput(benchmark::State& state) {
  ah::System sys;
  sys.add<ah::SineSource>({}, {"rf"}, "src", 100e6, 1.0);
  sys.add<ah::SineSource>({}, {"lo"}, "lo", 145e6, 1.0);
  sys.add<ah::Mixer>({"rf", "lo"}, {"mix"}, "m", 2.0);
  sys.add<ah::FilterBlock>({"mix"}, {"out"}, "f",
                           ah::FilterBlock::Kind::kLowpass, 3, 80e6);
  sys.probe("out");
  for (auto _ : state) {
    auto res = sys.run(10e-6, 2e9);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_AhdlStepThroughput);

void BM_CellDbSearch(benchmark::State& state) {
  cd::CellDatabase db;
  cd::seedExampleLibrary(db);
  for (auto _ : state) {
    auto hits = db.search("gain");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_CellDbSearch);

void BM_Fft4096(benchmark::State& state) {
  u::Rng rng(1);
  std::vector<double> sig(4096);
  for (auto& x : sig) x = rng.normal();
  for (auto _ : state) {
    auto spec = u::amplitudeSpectrum(sig, 1e9);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_Fft4096);

// ---------------------------------------------------------------------------
// Solver ablation (`--solver-json FILE`): dense LU vs the legacy row-list
// SparseMatrix::solveInPlace vs the structure-caching SparseLU, at both the
// kernel level (MNA-like random systems) and the circuit level (diode-RC
// ladders through the full Analyzer). Emits the "ahfic-bench-solver-v1"
// document consumed by the CI solver-ablation smoke job.

double nowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Mean ns per call, with one warmup call and a rep count sized so the
/// measured window is ~20 ms (capped for the expensive dense sizes).
template <typename F>
double timeOp(F&& f, double targetNs = 2e7, int maxReps = 400) {
  f();
  double t0 = nowNs();
  f();
  const double once = std::max(nowNs() - t0, 1.0);
  const int reps = std::clamp(static_cast<int>(targetNs / once), 1, maxReps);
  t0 = nowNs();
  for (int k = 0; k < reps; ++k) f();
  return (nowNs() - t0) / reps;
}

/// Solver-only ablation on one MNA-like system of size n: per-iteration
/// cost of each backend as the engine pays it (the dense and legacy paths
/// re-copy their matrix every Newton iteration because elimination is
/// destructive; the SparseLU path refactors in place).
struct SolverKernelResult {
  int n = 0;
  size_t nnz = 0;
  size_t nnzLU = 0;        ///< L+U nonzeros after ordering (fill-in)
  double denseNs = 0.0;    ///< copy + luFactor + luSolve
  double legacyNs = 0.0;   ///< copy + solveInPlace
  double sparseSetupNs = 0.0;    ///< analyze + first (pivoting) factor
  double sparseRefactorNs = 0.0; ///< pattern-reusing numeric factor
  double sparseSolveNs = 0.0;    ///< one substitution pass
  double sparseNs() const { return sparseRefactorNs + sparseSolveNs; }
};

SolverKernelResult solverKernel(int n) {
  SolverKernelResult r;
  r.n = n;
  sp::DenseMatrix<double> a;
  sp::SparseMatrix<double> s;
  std::vector<double> b;
  fillSystem(n, a, s, b);

  std::vector<std::pair<int, int>> entries;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (a.at(i, j) != 0.0) entries.emplace_back(i, j);
  sp::CsrPattern pat;
  pat.build(n, std::move(entries));
  std::vector<double> vals(pat.nonzeros(), 0.0);
  for (int i = 0; i < n; ++i)
    for (int p = pat.rowPtr()[static_cast<size_t>(i)];
         p < pat.rowPtr()[static_cast<size_t>(i) + 1]; ++p)
      vals[static_cast<size_t>(p)] =
          a.at(i, pat.colIdx()[static_cast<size_t>(p)]);
  r.nnz = pat.nonzeros();

  r.denseNs = timeOp([&] {
    auto aCopy = a;
    std::vector<int> perm;
    aCopy.luFactor(perm);
    std::vector<double> x;
    aCopy.luSolve(perm, b, x);
    benchmark::DoNotOptimize(x);
  });
  r.legacyNs = timeOp([&] {
    auto sCopy = s;
    auto bCopy = b;
    std::vector<double> x;
    sCopy.solveInPlace(bCopy, x);
    benchmark::DoNotOptimize(x);
  });

  sp::SparseLU<double> lu;
  r.sparseSetupNs = timeOp([&] {
    lu.analyze(pat);
    lu.factor(vals);
  });
  r.sparseRefactorNs = timeOp([&] { lu.factor(vals); });
  std::vector<double> x;
  r.sparseSolveNs = timeOp([&] {
    lu.solve(b, x);
    benchmark::DoNotOptimize(x);
  });
  r.nnzLU = lu.stats().nnzL + lu.stats().nnzU;
  return r;
}

/// Circuit-level ablation: a diode-RC ladder run through the full
/// Analyzer per backend. Wall time covers assemble + factor + solve +
/// device evaluation — what a user actually waits for.
struct CircuitBackendResult {
  double wallNs = 0.0;
  long newtonIterations = 0;
  double maxAbsDiffVsDense = 0.0;
  long fullFactors = 0;
  long refactors = 0;
  long patternInserts = 0;
  double nsPerIteration() const {
    return newtonIterations > 0 ? wallNs / static_cast<double>(
                                               newtonIterations)
                                : 0.0;
  }
};

void buildDiodeLadder(sp::Circuit& ckt, int stages) {
  const int in = ckt.node("in");
  ckt.add<sp::VSource>("V1", in, 0,
                       std::make_unique<sp::SinWaveform>(1.0, 0.5, 1e6),
                       1.0);
  sp::DiodeModel dm;
  dm.is = 1e-14;
  dm.cj0 = 1e-12;
  dm.rs = 10.0;
  int prev = in;
  for (int k = 0; k < stages; ++k) {
    const int nd = ckt.node("n" + std::to_string(k));
    ckt.add<sp::Resistor>("R" + std::to_string(k), prev, nd, 1e3);
    ckt.add<sp::Capacitor>("C" + std::to_string(k), nd, 0, 1e-12);
    if (k % 3 == 0)
      ckt.add<sp::Diode>("D" + std::to_string(k), ckt, nd, 0, dm);
    prev = nd;
  }
}

CircuitBackendResult runCircuitBackend(int stages, sp::SolverKind kind,
                                       const std::vector<double>& refOp,
                                       std::vector<double>* opOut,
                                       int* unknowns) {
  sp::Circuit ckt;
  buildDiodeLadder(ckt, stages);
  sp::AnalysisOptions opts;
  opts.solver = kind;
  sp::Analyzer an(ckt, opts);
  if (unknowns != nullptr) *unknowns = an.unknownCount();

  CircuitBackendResult r;
  const auto x = an.op();
  if (opOut != nullptr) *opOut = x;
  for (size_t i = 0; i < refOp.size() && i < x.size(); ++i)
    r.maxAbsDiffVsDense =
        std::max(r.maxAbsDiffVsDense, std::abs(x[i] - refOp[i]));

  const double t0 = nowNs();
  const auto tr = an.transient(5e-7, 1e-8);
  r.wallNs = nowNs() - t0;
  benchmark::DoNotOptimize(tr);
  r.newtonIterations = an.stats().newtonIterations;
  r.fullFactors = an.stats().sparseFullFactors;
  r.refactors = an.stats().sparseRefactors;
  r.patternInserts = an.stats().sparsePatternInserts;
  return r;
}

/// Per-Newton device-evaluation cost of the ladder: one full device-list
/// load pass at the converged DC operating point, through a discarding
/// stamper — the junction math, limiting checks and virtual dispatch the
/// Newton loop pays every iteration before any matrix work. Reported
/// separately because the engine's assemble timing folds this together
/// with the value scatter and RHS assembly.
double measureDeviceEvalNs(int stages) {
  sp::Circuit ckt;
  buildDiodeLadder(ckt, stages);
  sp::AnalysisOptions opts;
  opts.solver = sp::SolverKind::kSparse;
  sp::Analyzer an(ckt, opts);
  const std::vector<double> xOp = an.op();
  const sp::Solution x(&xOp);

  int stateCount = 0;
  for (const auto& dev : ckt.devices()) stateCount += dev->stateCount();
  std::vector<double> st(static_cast<size_t>(stateCount), 0.0);
  std::vector<double> stPrev(static_cast<size_t>(stateCount), 0.0);
  std::vector<double> dstPrev(static_cast<size_t>(stateCount), 0.0);
  bool limited = false;
  sp::LoadContext ctx;
  ctx.state = &st;
  ctx.prevState = &stPrev;
  ctx.prevDstate = &dstPrev;
  ctx.limited = &limited;
  sp::StateOnlyStamper sink;
  return timeOp([&] {
    for (const auto& dev : ckt.devices()) dev->load(sink, x, ctx);
    limited = false;
  });
}

u::JsonValue backendJson(const CircuitBackendResult& r, bool sparse) {
  u::JsonValue v = u::JsonValue::object();
  v.set("wallNs", r.wallNs);
  v.set("newtonIterations", static_cast<double>(r.newtonIterations));
  v.set("nsPerIteration", r.nsPerIteration());
  v.set("maxAbsDiffVsDense", r.maxAbsDiffVsDense);
  if (sparse) {
    v.set("fullFactors", static_cast<double>(r.fullFactors));
    v.set("refactors", static_cast<double>(r.refactors));
    v.set("patternInserts", static_cast<double>(r.patternInserts));
  }
  return v;
}

int runSolverAblation(const std::string& outPath) {
  u::JsonValue doc = u::JsonValue::object();
  doc.set("schema", "ahfic-bench-solver-v1");

  std::cout << "== Solver ablation: dense vs legacy sparse vs SparseLU ==\n"
            << "(per-iteration cost as the Newton loop pays it; the dense\n"
            << " and legacy backends re-copy their destructive matrix each\n"
            << " iteration, SparseLU refactors its cached pattern)\n\n";

  u::Table kt({"n", "nnz", "nnz(L+U)", "dense [ns]", "legacy [ns]",
               "refactor+solve [ns]", "vs legacy", "vs dense"});
  u::JsonValue kernels = u::JsonValue::array();
  for (int n : {16, 64, 256, 1024}) {
    const auto r = solverKernel(n);
    const double vsLegacy = r.sparseNs() > 0.0 ? r.legacyNs / r.sparseNs()
                                               : 0.0;
    const double vsDense = r.denseNs > 0.0 ? r.sparseNs() / r.denseNs : 0.0;
    kt.addRow({std::to_string(r.n), std::to_string(r.nnz),
               std::to_string(r.nnzLU), u::fixed(r.denseNs, 0),
               u::fixed(r.legacyNs, 0), u::fixed(r.sparseNs(), 0),
               u::fixed(vsLegacy, 1) + "x", u::fixed(vsDense, 2)});
    u::JsonValue k = u::JsonValue::object();
    k.set("n", static_cast<double>(r.n));
    k.set("nnz", static_cast<double>(r.nnz));
    k.set("nnzLU", static_cast<double>(r.nnzLU));
    k.set("denseNs", r.denseNs);
    k.set("legacyNs", r.legacyNs);
    k.set("sparseSetupNs", r.sparseSetupNs);
    k.set("sparseRefactorNs", r.sparseRefactorNs);
    k.set("sparseSolveNs", r.sparseSolveNs);
    k.set("sparseNs", r.sparseNs());
    k.set("speedupVsLegacy", vsLegacy);
    k.set("ratioVsDense", vsDense);
    kernels.push(std::move(k));
  }
  doc.set("kernel", std::move(kernels));
  kt.print(std::cout);
  std::cout << "\n";

  u::Table ct({"circuit", "unknowns", "backend", "wall [ms]", "iters",
               "ns/iter", "dev-eval [ns/iter]", "max |dV| vs dense"});
  u::JsonValue circuits = u::JsonValue::array();
  for (int stages : {10, 60, 250}) {
    std::vector<double> refOp;
    int unknowns = 0;
    const auto dense = runCircuitBackend(stages, sp::SolverKind::kDense,
                                         {}, &refOp, &unknowns);
    const auto legacy = runCircuitBackend(
        stages, sp::SolverKind::kSparseLegacy, refOp, nullptr, nullptr);
    const auto sparse = runCircuitBackend(stages, sp::SolverKind::kSparse,
                                          refOp, nullptr, nullptr);
    // Solver-only comparison at this circuit's exact unknown count, so
    // the kernel-level speedup is attributable to the bench circuit.
    const auto solverOnly = solverKernel(unknowns);
    const double deviceEvalNs = measureDeviceEvalNs(stages);

    const std::string name = "diode_rc_ladder_" + std::to_string(stages);
    struct Row {
      const char* backend;
      const CircuitBackendResult* r;
    };
    for (const Row& row : {Row{"dense", &dense}, Row{"legacy", &legacy},
                           Row{"sparse", &sparse}})
      ct.addRow({name, std::to_string(unknowns), std::string(row.backend),
                 u::fixed(row.r->wallNs * 1e-6, 2),
                 std::to_string(row.r->newtonIterations),
                 u::fixed(row.r->nsPerIteration(), 0),
                 u::fixed(deviceEvalNs, 0),
                 u::formatEngineering(row.r->maxAbsDiffVsDense, 2)});

    u::JsonValue c = u::JsonValue::object();
    c.set("name", name);
    c.set("stages", static_cast<double>(stages));
    c.set("unknowns", static_cast<double>(unknowns));
    // Backend-independent: the same device list is evaluated whichever
    // solver consumes the stamps.
    c.set("deviceEvalNs", deviceEvalNs);
    u::JsonValue backends = u::JsonValue::object();
    backends.set("dense", backendJson(dense, false));
    backends.set("legacy", backendJson(legacy, false));
    backends.set("sparse", backendJson(sparse, true));
    c.set("backends", std::move(backends));
    u::JsonValue so = u::JsonValue::object();
    so.set("denseNs", solverOnly.denseNs);
    so.set("legacyNs", solverOnly.legacyNs);
    so.set("sparseNs", solverOnly.sparseNs());
    so.set("nnz", static_cast<double>(solverOnly.nnz));
    so.set("nnzLU", static_cast<double>(solverOnly.nnzLU));
    so.set("speedupVsLegacy",
           solverOnly.sparseNs() > 0.0
               ? solverOnly.legacyNs / solverOnly.sparseNs()
               : 0.0);
    so.set("ratioVsDense", solverOnly.denseNs > 0.0
                               ? solverOnly.sparseNs() / solverOnly.denseNs
                               : 0.0);
    c.set("solverOnly", std::move(so));
    circuits.push(std::move(c));
  }
  doc.set("circuits", std::move(circuits));
  ct.print(std::cout);
  std::cout << "\n";

  ahfic::obs::writeBenchFile(outPath, "solver_ablation", std::move(doc),
                             ahfic::obs::benchTimestampUtc());
  std::cout << "wrote " << outPath << "\n";
  return 0;
}

}  // namespace

// Expanded BENCHMARK_MAIN(): the obs flags are stripped before
// google-benchmark parses the remainder, so `--trace`/`--metrics` compose
// with `--benchmark_filter=...` etc.
int main(int argc, char** argv) {
  ahfic::obs::CliOptions obsOpts;
  std::string solverJson;
  std::vector<char*> rest = {argv[0]};
  for (int k = 1; k < argc; ++k) {
    if (obsOpts.consume(argc, argv, k)) continue;
    if (std::strcmp(argv[k], "--solver-json") == 0 && k + 1 < argc) {
      solverJson = argv[++k];
      continue;
    }
    rest.push_back(argv[k]);
  }
  obsOpts.begin();

  if (!solverJson.empty()) {
    const int rc = runSolverAblation(solverJson);
    obsOpts.finish(std::cout);
    return rc;
  }

  int restArgc = static_cast<int>(rest.size());
  benchmark::Initialize(&restArgc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(restArgc, rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  obsOpts.finish(std::cout);
  return 0;
}
