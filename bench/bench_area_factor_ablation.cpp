// Ablation for the paper's Sec. 4 argument: SPICE's single AREA factor
// "is not sufficiently accurate for modeling important shape dependent
// parameters".
//
// For each Fig. 8 shape we compare
//   baseline  — the reference N1.2-6S card with the SPICE area factor
//   generated — the geometry-aware card from the model generator
// on (a) the parameter values themselves, (b) the predicted fT at the
// ring oscillator's operating current, and (c) the predicted
// ring-oscillator frequency. The baseline's error vs the geometry model
// is the cost of ignoring perimeter and stripe topology.

#include <cmath>
#include <iostream>

#include "bjtgen/ft.h"
#include "bjtgen/generator.h"
#include "bjtgen/ringosc.h"
#include "obs/cli.h"
#include "spice/bjt.h"
#include "spice/circuit.h"
#include "util/table.h"
#include "util/units.h"

namespace bg = ahfic::bjtgen;
namespace sp = ahfic::spice;
namespace u = ahfic::util;

namespace {

/// Area-factor-scaled copy of the reference card (what plain SPICE does
/// with "Q1 c b e ref <area>"). Uses the same scaling as the Bjt device.
sp::BjtModel baselineCard(const bg::ModelGenerator& gen, double area) {
  sp::Circuit scratch;
  auto& q = scratch.add<sp::Bjt>("Qtmp", scratch, scratch.node("c"),
                                 scratch.node("b"), 0, gen.referenceCard(),
                                 area);
  return q.scaledModel();
}

}  // namespace

int main(int argc, char** argv) {
  ahfic::obs::CliOptions obsOpts;
  for (int k = 1; k < argc; ++k) obsOpts.consume(argc, argv, k);
  obsOpts.begin();

  const auto gen = bg::ModelGenerator::withDefaultTechnology();

  std::cout << "== Ablation: SPICE AREA factor vs geometry-aware model "
               "generation ==\n\n"
            << "Parameter comparison (baseline -> generated):\n\n";

  u::Table params({"Shape", "area factor", "RB [ohm]", "RC [ohm]",
                   "CJC [fF]", "CJE [fF]"});
  for (const auto& shape : bg::fig8Shapes()) {
    const double af = gen.areaFactor(shape);
    const auto base = baselineCard(gen, af);
    const auto full = gen.generate(shape);
    auto cmp = [](double b, double g, int dec) {
      return u::fixed(b, dec) + " -> " + u::fixed(g, dec);
    };
    params.addRow({shape.name(), u::fixed(af, 2),
                   cmp(base.rb, full.rb, 0), cmp(base.rc, full.rc, 1),
                   cmp(base.cjc * 1e15, full.cjc * 1e15, 1),
                   cmp(base.cje * 1e15, full.cje * 1e15, 1)});
  }
  params.print(std::cout);

  std::cout << "\nPredicted fT at the ring oscillator's switch current "
               "(3 mA):\n\n";
  u::Table fts({"Shape", "fT baseline", "fT generated", "error"});
  for (const auto& shape : bg::fig8Shapes()) {
    const double af = gen.areaFactor(shape);
    bg::FtExtractor fxBase(baselineCard(gen, af));
    bg::FtExtractor fxFull(gen.generate(shape));
    const double ic = 3e-3;
    const double fb = fxBase.measureAt(ic).ft;
    const double ff = fxFull.measureAt(ic).ft;
    fts.addRow({shape.name(), u::formatFrequency(fb),
                u::formatFrequency(ff),
                u::fixed((fb / ff - 1.0) * 100.0, 1) + "%"});
  }
  fts.print(std::cout);

  std::cout << "\nPredicted ring-oscillator frequency (Table 1 vehicle):\n\n";
  bg::RingOscillatorSpec spec;
  spec.followerModel = gen.generate("N1.2-6D");
  u::Table ring({"Shape", "f baseline", "f generated", "error"});
  for (const auto& shape : bg::fig8Shapes()) {
    const double af = gen.areaFactor(shape);
    spec.diffPairModel = baselineCard(gen, af);
    const auto mb = bg::measureRingFrequency(spec, 10.0, 3.0);
    spec.diffPairModel = gen.generate(shape);
    const auto mf = bg::measureRingFrequency(spec, 10.0, 3.0);
    const bool both = mb.oscillating && mf.oscillating;
    ring.addRow({shape.name(),
                 mb.oscillating ? u::formatFrequency(mb.frequency) : "-",
                 mf.oscillating ? u::formatFrequency(mf.frequency) : "-",
                 both ? u::fixed((mb.frequency / mf.frequency - 1.0) * 100.0,
                                 1) +
                            "%"
                      : "-"});
  }
  ring.print(std::cout);

  std::cout << "\nExpected shape: the baseline is exact for the reference "
               "shape by construction\nand drifts for every other shape — "
               "most for the shapes whose area factor\nequals 2.0 but "
               "whose stripe topologies differ (N2.4-6D, N1.2x2-6S, "
               "N1.2-12D,\nN1.2x2-6T all collapse to the SAME baseline "
               "card while the geometry model\ndistinguishes them).\n";
  obsOpts.finish(std::cout);
  return 0;
}
