// Batch-runner scaling study: throughput of the Fig. 9 fT–Ic sweep and a
// 64-die Monte-Carlo workload at 1/2/4/8 worker threads, with a
// determinism cross-check (every thread count must reproduce the 1-thread
// results bit-for-bit). Emits BENCH_runner_scaling.json.
//
// Usage: bench_runner_scaling [--out FILE] [--dies N]
//                             [--trace FILE] [--metrics FILE]

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bjtgen/generator.h"
#include "obs/bench.h"
#include "obs/cli.h"
#include "runner/engine.h"
#include "runner/workloads.h"
#include "util/json.h"
#include "util/table.h"
#include "util/units.h"

namespace bg = ahfic::bjtgen;
namespace rn = ahfic::runner;
namespace u = ahfic::util;

namespace {

bool sameOutcomes(const std::vector<rn::JobOutcome>& a,
                  const std::vector<rn::JobOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (!(a[k].result == b[k].result)) return false;
    if (a[k].record.status != b[k].record.status) return false;
  }
  return true;
}

struct WorkloadReport {
  std::string name;
  size_t jobs = 0;
  std::vector<int> threads;
  std::vector<double> wallMs;
  std::vector<bool> identical;  // vs the 1-thread reference
};

WorkloadReport scale(const std::string& name,
                     const std::vector<rn::Job>& jobs,
                     const std::vector<int>& threadCounts) {
  WorkloadReport rep;
  rep.name = name;
  rep.jobs = jobs.size();

  std::vector<rn::JobOutcome> reference;
  for (const int t : threadCounts) {
    rn::RunnerOptions opts;
    opts.threads = t;
    opts.useCache = false;  // measure compute, not cache hits
    rn::BatchRunner runner(opts);
    const auto batch = runner.run(jobs);
    rep.threads.push_back(t);
    rep.wallMs.push_back(batch.manifest.wallMs);
    if (reference.empty()) reference = batch.outcomes;
    rep.identical.push_back(sameOutcomes(reference, batch.outcomes));
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outPath = "BENCH_runner_scaling.json";
  int dies = 64;
  ahfic::obs::CliOptions obsOpts;
  for (int k = 1; k < argc; ++k) {
    if (obsOpts.consume(argc, argv, k)) continue;
    if (std::strcmp(argv[k], "--out") == 0 && k + 1 < argc)
      outPath = argv[++k];
    else if (std::strcmp(argv[k], "--dies") == 0 && k + 1 < argc)
      dies = std::atoi(argv[++k]);
  }
  obsOpts.begin();

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "== Runner scaling: batch throughput vs worker threads ==\n"
            << "(hardware concurrency: " << hw << ")\n\n";

  const std::vector<int> threadCounts = {1, 2, 4, 8};
  const auto gen = bg::ModelGenerator::withDefaultTechnology();

  // Workload 1: the Fig. 9 sweep (4 shapes x log current grid).
  std::vector<double> currents;
  for (double ic = 0.05e-3; ic <= 20.001e-3; ic *= std::pow(10.0, 0.25))
    currents.push_back(ic);
  const auto fig9 = scale(
      "fig9-ft-sweep", rn::fig9SweepJobs(gen, bg::fig9Shapes(), currents),
      threadCounts);

  // Workload 2: Monte-Carlo process variation, one cheap fT job per die.
  const auto mc = scale(
      "monte-carlo-" + std::to_string(dies) + "-dies",
      rn::monteCarloFtJobs(bg::defaultTechnology(), bg::ProcessVariation{},
                           dies, "N1.2-12D", 3e-3),
      threadCounts);

  u::JsonValue doc = u::JsonValue::object();
  doc.set("schema", "ahfic-bench-runner-scaling-v1");
  doc.set("hardwareConcurrency", static_cast<double>(hw));
  u::JsonValue workloads = u::JsonValue::array();

  for (const WorkloadReport& rep : {fig9, mc}) {
    std::cout << "-- " << rep.name << " (" << rep.jobs << " jobs) --\n";
    u::Table table({"threads", "wall [ms]", "jobs/s", "speedup",
                    "identical to 1-thread"});
    u::JsonValue w = u::JsonValue::object();
    w.set("name", rep.name);
    w.set("jobs", static_cast<double>(rep.jobs));
    u::JsonValue runs = u::JsonValue::array();
    for (size_t k = 0; k < rep.threads.size(); ++k) {
      const double speedup =
          rep.wallMs[k] > 0.0 ? rep.wallMs[0] / rep.wallMs[k] : 0.0;
      const double jobsPerSec =
          rep.wallMs[k] > 0.0
              ? static_cast<double>(rep.jobs) / (rep.wallMs[k] * 1e-3)
              : 0.0;
      table.addRow({std::to_string(rep.threads[k]),
                    u::fixed(rep.wallMs[k], 0), u::fixed(jobsPerSec, 1),
                    u::fixed(speedup, 2) + "x",
                    rep.identical[k] ? "yes" : "NO"});
      u::JsonValue run = u::JsonValue::object();
      run.set("threads", rep.threads[k]);
      run.set("wallMs", rep.wallMs[k]);
      run.set("jobsPerSec", jobsPerSec);
      run.set("speedup", speedup);
      run.set("identicalToSerial", rep.identical[k]);
      runs.push(std::move(run));
    }
    w.set("runs", std::move(runs));
    workloads.push(std::move(w));
    table.print(std::cout);
    std::cout << "\n";
  }
  doc.set("workloads", std::move(workloads));

  ahfic::obs::writeBenchFile(outPath, "runner_scaling", std::move(doc),
                             ahfic::obs::benchTimestampUtc());
  std::cout << "wrote " << outPath << "\n";
  if (hw < 4)
    std::cout << "note: fewer than 4 hardware threads available; wall-clock "
                 "speedup is bounded by the host, not the engine.\n";
  obsOpts.finish(std::cout);
  return 0;
}
