// Reproduces Fig. 5: "AHDL simulation result of image rejection tuner" —
// image rejection ratio vs phase error, gain balance as the curve
// parameter.
//
// Prints the simulated (time-domain AHDL) value next to the analytic
// phasor formula for every grid point. The paper's reading example — a
// 30 dB system requirement — is checked explicitly at the end.

#include <cstdio>
#include <iostream>
#include <vector>

#include "obs/cli.h"
#include "tuner/irr.h"
#include "util/table.h"

namespace tn = ahfic::tuner;
namespace u = ahfic::util;

int main(int argc, char** argv) {
  ahfic::obs::CliOptions obsOpts;
  for (int k = 1; k < argc; ++k) obsOpts.consume(argc, argv, k);
  obsOpts.begin();

  std::cout << "== Fig. 5: image rejection ratio vs phase error ==\n"
            << "(simulated via the behavioural Fig. 4 tuner; analytic in "
               "parentheses; dB)\n\n";

  const std::vector<double> gains = {0.01, 0.03, 0.05, 0.07, 0.09};
  const std::vector<double> phases = {0.0, 1.0, 2.0, 3.0, 4.0,
                                      5.0, 6.0, 8.0, 10.0};

  std::vector<std::string> header = {"phase err [deg]"};
  for (double g : gains)
    header.push_back("gain " + u::fixed(g * 100.0, 0) + "%");
  u::Table table(header);

  for (double phi : phases) {
    std::vector<std::string> row = {u::fixed(phi, 1)};
    for (double g : gains) {
      tn::ImageRejectImpairments imp;
      imp.loPhaseErrorDeg = phi;
      imp.gainImbalance = g;
      const double sim = tn::simulateImageRejectionDb(imp);
      const double an = tn::analyticImageRejectionDb(phi, g);
      row.push_back(u::fixed(sim, 1) + " (" + u::fixed(an, 1) + ")");
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\n== Spec derivation (paper's usage example) ==\n"
            << "System requirement: image rejection ratio >= 30 dB.\n";
  for (double g : gains) {
    // Largest phase error that still meets 30 dB at this gain balance.
    double feasible = -1.0;
    for (double phi = 0.0; phi <= 10.0; phi += 0.1) {
      if (tn::analyticImageRejectionDb(phi, g) >= 30.0) feasible = phi;
    }
    if (feasible >= 0.0)
      std::printf(
          "  gain balance %2.0f%%: phase error must stay <= %.1f deg\n",
          g * 100.0, feasible);
    else
      std::printf(
          "  gain balance %2.0f%%: cannot meet 30 dB at any phase error\n",
          g * 100.0);
  }
  obsOpts.finish(std::cout);
  return 0;
}
