// Reproduces the Sec. 3 re-use claim: "Investigating the re-use of IC
// design in the authors' design group revealed that above 70% of the
// circuits can be re-used."
//
// A synthetic stream of IC projects draws blocks from a product-line
// taxonomy; blocks already in the cell database are checked out, missing
// ones are designed and registered. The steady-state re-use ratio is the
// reproduced quantity.

#include <iostream>

#include "celldb/reuse.h"
#include "celldb/seed.h"
#include "obs/cli.h"
#include "util/table.h"

namespace cd = ahfic::celldb;
namespace u = ahfic::util;

int main(int argc, char** argv) {
  ahfic::obs::CliOptions obsOpts;
  for (int k = 1; k < argc; ++k) obsOpts.consume(argc, argv, k);
  obsOpts.begin();

  cd::CellDatabase db;
  cd::seedExampleLibrary(db);  // the Fig. 6 starter library

  cd::ReuseSimConfig cfg;
  const auto res = cd::runReuseStudy(db, cfg);

  std::cout << "== Sec. 3: circuit re-use across a project stream ==\n"
            << "(" << cfg.projects << " consecutive IC projects, "
            << cfg.distinctBlockKinds << "-kind block taxonomy)\n\n";

  u::Table table({"project", "blocks needed", "reused", "newly designed",
                  "reuse ratio"});
  for (size_t p = 0; p < res.projects.size(); ++p) {
    const auto& o = res.projects[p];
    table.addRow({std::to_string(p + 1), std::to_string(o.blocksNeeded),
                  std::to_string(o.blocksReused),
                  std::to_string(o.blocksNewlyDesigned),
                  u::fixed(o.reuseRatio() * 100.0, 0) + "%"});
  }
  table.print(std::cout);

  std::cout << "\nOverall re-use ratio:       "
            << u::fixed(res.overallReuseRatio() * 100.0, 1) << "%\n"
            << "Steady-state (2nd half):    "
            << u::fixed(res.steadyStateReuseRatio() * 100.0, 1) << "%\n"
            << "Paper's claim: \"above 70% of the circuits can be "
               "re-used\" -> "
            << (res.steadyStateReuseRatio() > 0.70 ? "REPRODUCED"
                                                   : "NOT reproduced")
            << "\n\n";

  const auto st = db.stats();
  std::cout << "Final library: " << st.cellCount << " cells, "
            << st.totalCheckouts << " checkouts recorded.\n";
  obsOpts.finish(std::cout);
  return 0;
}
